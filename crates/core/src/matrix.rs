//! The site × mechanism × stage capability matrix.
//!
//! The analytical core behind Tables I/II: which mechanism each site has,
//! and how far along (Research < TechDevelopment < Production). The
//! matrix keeps the *highest* stage per (site, mechanism) and answers the
//! coverage questions the survey's analysis section needs.

use epa_sites::taxonomy::{Capability, Mechanism, Stage};
use serde::Serialize;
use std::collections::BTreeMap;

/// The capability matrix.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CapabilityMatrix {
    /// (site → mechanism → highest stage).
    cells: BTreeMap<String, BTreeMap<Mechanism, Stage>>,
}

impl CapabilityMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one site's capability list.
    pub fn add_site(&mut self, site: &str, capabilities: &[Capability]) {
        let row = self.cells.entry(site.to_owned()).or_default();
        for c in capabilities {
            row.entry(c.mechanism)
                .and_modify(|s| {
                    if c.stage > *s {
                        *s = c.stage;
                    }
                })
                .or_insert(c.stage);
        }
    }

    /// Number of sites.
    #[must_use]
    pub fn sites(&self) -> usize {
        self.cells.len()
    }

    /// The stage a site has a mechanism at, if any.
    #[must_use]
    pub fn stage_of(&self, site: &str, mechanism: Mechanism) -> Option<Stage> {
        self.cells
            .get(site)
            .and_then(|row| row.get(&mechanism))
            .copied()
    }

    /// The mechanisms a site has at or above `stage`.
    #[must_use]
    pub fn mechanisms_at(&self, site: &str, stage: Stage) -> Vec<Mechanism> {
        self.cells
            .get(site)
            .map(|row| {
                row.iter()
                    .filter(|(_, s)| **s >= stage)
                    .map(|(m, _)| *m)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// How many sites have `mechanism` at or above `stage`.
    #[must_use]
    pub fn coverage(&self, mechanism: Mechanism, stage: Stage) -> usize {
        self.cells
            .values()
            .filter(|row| row.get(&mechanism).is_some_and(|s| *s >= stage))
            .count()
    }

    /// Site keys in matrix order.
    pub fn site_keys(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// Renders a compact coverage table: mechanism × stage counts.
    #[must_use]
    pub fn render_coverage(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>9} {:>9} {:>11}\n",
            "mechanism", "research", "tech-dev", "production"
        ));
        for m in Mechanism::ALL {
            let r = self.coverage(m, Stage::Research);
            let t = self.coverage(m, Stage::TechDevelopment);
            let p = self.coverage(m, Stage::Production);
            out.push_str(&format!("{:<24} {r:>9} {t:>9} {p:>11}\n", m.label()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sites::all_sites;

    fn matrix() -> CapabilityMatrix {
        let mut m = CapabilityMatrix::new();
        for site in all_sites(1) {
            m.add_site(&site.meta.key, &site.capabilities);
        }
        m
    }

    #[test]
    fn nine_sites_loaded() {
        assert_eq!(matrix().sites(), 9);
    }

    #[test]
    fn highest_stage_wins() {
        let mut m = CapabilityMatrix::new();
        m.add_site(
            "x",
            &[
                Capability::new(Stage::Research, Mechanism::PowerCapping, "a"),
                Capability::new(Stage::Production, Mechanism::PowerCapping, "b"),
                Capability::new(Stage::TechDevelopment, Mechanism::PowerCapping, "c"),
            ],
        );
        assert_eq!(
            m.stage_of("x", Mechanism::PowerCapping),
            Some(Stage::Production)
        );
    }

    #[test]
    fn kaust_production_power_capping() {
        let m = matrix();
        assert_eq!(
            m.stage_of("kaust", Mechanism::PowerCapping),
            Some(Stage::Production)
        );
        assert_eq!(m.stage_of("kaust", Mechanism::NodeShutdown), None);
    }

    #[test]
    fn coverage_is_monotone_in_stage() {
        let m = matrix();
        for mech in Mechanism::ALL {
            let r = m.coverage(mech, Stage::Research);
            let t = m.coverage(mech, Stage::TechDevelopment);
            let p = m.coverage(mech, Stage::Production);
            assert!(r >= t && t >= p, "{mech}: {r}/{t}/{p}");
        }
    }

    #[test]
    fn power_capping_is_the_most_deployed_mechanism() {
        // The survey's headline observation: hardware capping (CAPMC,
        // Fujitsu) is the most common production capability.
        let m = matrix();
        let cap = m.coverage(Mechanism::PowerCapping, Stage::Production);
        assert!(cap >= 3, "KAUST, Trinity, JCAHPC at least, got {cap}");
    }

    #[test]
    fn render_contains_all_mechanisms() {
        let s = matrix().render_coverage();
        for mech in Mechanism::ALL {
            assert!(s.contains(mech.label()));
        }
    }

    #[test]
    fn unknown_site_is_empty() {
        let m = matrix();
        assert!(m.mechanisms_at("nope", Stage::Research).is_empty());
        assert_eq!(m.stage_of("nope", Mechanism::PowerCapping), None);
    }
}
