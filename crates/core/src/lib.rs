//! # epa-core — the survey engine (the paper's primary contribution)
//!
//! The IPDPSW'18 paper's contribution is the *survey instrument and its
//! initial analysis*: the Q1–Q8 questionnaire, the center-selection
//! criteria, the Research / Technology-Development / Production capability
//! framing of Tables I and II, the component-interaction picture of
//! Figure 1, and the geographic overview of Figure 2. This crate
//! implements that contribution as a working system:
//!
//! - [`questionnaire`] — the typed Q1–Q8 schema and the machinery that
//!   *answers* the quantitative questions from simulation artifacts
//!   rather than from interview text.
//! - [`selection`] — the §III three-part center-selection test.
//! - [`matrix`] — the site × mechanism × stage capability matrix.
//! - [`analysis`] — cross-site similarity (Jaccard), agglomerative
//!   clustering, and the common/unique-theme extraction the paper's §VII
//!   promises as "next steps".
//! - [`tables`] — renderers regenerating Tables I and II.
//! - [`geomap`] — the Figure 2 world map (ASCII).
//! - [`report`] — full survey report assembly.

pub mod analysis;
pub mod billing;
pub mod geomap;
pub mod matrix;
pub mod questionnaire;
pub mod report;
pub mod selection;
pub mod tables;

pub use analysis::{cluster_sites, common_mechanisms, jaccard_similarity, unique_mechanisms};
pub use billing::{bill_users, EnergyBill, UserBill};
pub use matrix::CapabilityMatrix;
pub use questionnaire::{Question, SiteResponse};
pub use report::SurveyReport;
pub use selection::{SelectionCriteria, SelectionOutcome};
