//! The capability taxonomy behind Tables I and II.
//!
//! The survey organizes every center's answers into three *stages* —
//! Research Activities, Technology Development with Intent to Deploy, and
//! Production Development — crossed with the *mechanism* the capability
//! uses. [`Mechanism`] enumerates every distinct technique appearing in
//! Tables I/II; each site declares its capabilities as
//! (stage, mechanism, description) triples, and the survey engine builds
//! the cross-site analysis from them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Deployment stage of a capability (the three Table I/II columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Exploratory research activity.
    Research,
    /// Technology development with intent to deploy.
    TechDevelopment,
    /// Deployed in production.
    Production,
}

impl Stage {
    /// All stages in table-column order.
    pub const ALL: [Stage; 3] = [Stage::Research, Stage::TechDevelopment, Stage::Production];

    /// Column header used in the table renderers.
    #[must_use]
    pub fn header(self) -> &'static str {
        match self {
            Stage::Research => "Research Activities",
            Stage::TechDevelopment => "Technology Development with Intent to Deploy",
            Stage::Production => "Production Development",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.header())
    }
}

/// The EPA JSRM mechanisms appearing across Tables I and II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Static or dynamic hardware power capping (CAPMC, RAPL, Fujitsu).
    PowerCapping,
    /// DVFS / frequency selection for energy goals.
    EnergyAwareFrequency,
    /// Idle or demand-driven node shutdown and boot.
    NodeShutdown,
    /// Automated or manual emergency power response (job killing).
    EmergencyResponse,
    /// Power/energy prediction of jobs before execution.
    PowerPrediction,
    /// Scheduling informed by facility state (supply, cooling, layout).
    FacilityIntegration,
    /// Budget sharing between systems.
    InterSystemSharing,
    /// Limiting concurrent jobs under power/thermal stress.
    JobLimiting,
    /// Per-job energy reporting / user feedback (marks).
    UserReporting,
    /// System-wide power/energy monitoring infrastructure.
    Monitoring,
    /// Moldable jobs / over-provisioning under a budget.
    Overprovisioning,
    /// Topology-aware or application-aware placement (Q6).
    TopologyAware,
}

impl Mechanism {
    /// All mechanisms, stable order for reports.
    pub const ALL: [Mechanism; 12] = [
        Mechanism::PowerCapping,
        Mechanism::EnergyAwareFrequency,
        Mechanism::NodeShutdown,
        Mechanism::EmergencyResponse,
        Mechanism::PowerPrediction,
        Mechanism::FacilityIntegration,
        Mechanism::InterSystemSharing,
        Mechanism::JobLimiting,
        Mechanism::UserReporting,
        Mechanism::Monitoring,
        Mechanism::Overprovisioning,
        Mechanism::TopologyAware,
    ];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::PowerCapping => "power-capping",
            Mechanism::EnergyAwareFrequency => "energy-aware-frequency",
            Mechanism::NodeShutdown => "node-shutdown",
            Mechanism::EmergencyResponse => "emergency-response",
            Mechanism::PowerPrediction => "power-prediction",
            Mechanism::FacilityIntegration => "facility-integration",
            Mechanism::InterSystemSharing => "inter-system-sharing",
            Mechanism::JobLimiting => "job-limiting",
            Mechanism::UserReporting => "user-reporting",
            Mechanism::Monitoring => "monitoring",
            Mechanism::Overprovisioning => "overprovisioning",
            Mechanism::TopologyAware => "topology-aware",
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One capability row: what a site does, at which stage, with which
/// mechanism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capability {
    /// Deployment stage.
    pub stage: Stage,
    /// Mechanism classification.
    pub mechanism: Mechanism,
    /// The free-text description, paraphrasing the Tables I/II cell.
    pub description: String,
}

impl Capability {
    /// Convenience constructor.
    #[must_use]
    pub fn new(stage: Stage, mechanism: Mechanism, description: &str) -> Self {
        Capability {
            stage,
            mechanism,
            description: description.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_ordered_and_labeled() {
        assert_eq!(Stage::ALL.len(), 3);
        assert!(Stage::Research < Stage::Production);
        assert!(Stage::Production.header().contains("Production"));
    }

    #[test]
    fn mechanisms_unique_labels() {
        let labels: std::collections::HashSet<&str> =
            Mechanism::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Mechanism::ALL.len());
    }

    #[test]
    fn capability_construction() {
        let c = Capability::new(
            Stage::Production,
            Mechanism::PowerCapping,
            "static 270 W caps",
        );
        assert_eq!(c.stage, Stage::Production);
        assert_eq!(c.mechanism.label(), "power-capping");
        assert_eq!(format!("{}", c.mechanism), "power-capping");
    }
}
