//! # epa-sites — models of the nine surveyed HPC centers
//!
//! One module per center interviewed by the EE HPC WG EPA JSRM team
//! (survey §III): RIKEN, Tokyo Tech, CEA, KAUST, LRZ, STFC, Trinity
//! (LANL+Sandia), CINECA, and JCAHPC. Each site model wires the machine,
//! facility, workload, and the exact EPA JSRM capabilities its Tables
//! I/II row reports, at a scale reduced ~10× so a full site-week
//! simulates in seconds.
//!
//! [`taxonomy`] holds the capability taxonomy (Research / Technology
//! Development / Production × mechanism) that the survey's Tables I and
//! II are organized around; [`runner`] executes a [`SiteConfig`] and
//! produces the [`runner::SiteReport`] the `epa-core` survey engine
//! consumes.

pub mod centers;
pub mod config;
pub mod runner;
pub mod taxonomy;

pub use config::{SiteConfig, SiteMeta};
pub use runner::{run_site, SiteReport};
pub use taxonomy::{Capability, Mechanism, Stage};

/// All nine surveyed sites, in the survey's listing order.
#[must_use]
pub fn all_sites(seed: u64) -> Vec<SiteConfig> {
    vec![
        centers::riken::config(seed),
        centers::tokyo_tech::config(seed),
        centers::cea::config(seed),
        centers::kaust::config(seed),
        centers::lrz::config(seed),
        centers::stfc::config(seed),
        centers::trinity::config(seed),
        centers::cineca::config(seed),
        centers::jcahpc::config(seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_sites_in_survey_order() {
        let sites = all_sites(1);
        assert_eq!(sites.len(), 9);
        let names: Vec<&str> = sites.iter().map(|s| s.meta.key.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "riken",
                "tokyo-tech",
                "cea",
                "kaust",
                "lrz",
                "stfc",
                "trinity",
                "cineca",
                "jcahpc"
            ]
        );
    }

    #[test]
    fn all_sites_validate() {
        for site in all_sites(1) {
            site.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", site.meta.key));
        }
    }

    #[test]
    fn geography_spans_three_regions() {
        let sites = all_sites(1);
        let asia = sites.iter().filter(|s| s.meta.lon > 60.0).count();
        let europe = sites
            .iter()
            .filter(|s| s.meta.lon > -20.0 && s.meta.lon < 60.0)
            .count();
        let america = sites.iter().filter(|s| s.meta.lon < -60.0).count();
        assert!(asia >= 3, "Japan ×3 + KAUST");
        assert!(europe >= 4, "CEA, LRZ, STFC, CINECA");
        assert_eq!(america, 1, "Trinity");
    }

    #[test]
    fn every_site_has_production_capability() {
        // §V: "all sites have some type of production deployment".
        for site in all_sites(1) {
            assert!(
                site.capabilities
                    .iter()
                    .any(|c| c.stage == Stage::Production),
                "{} lacks production capability",
                site.meta.key
            );
        }
    }
}
