//! KAUST (Thuwal, Saudi Arabia) — Shaheen II, Cray XC40.
//!
//! Table I:
//! - Research: monitoring and managing power under data-center power and
//!   cooling limits.
//! - Tech development: detecting power-hungry applications; optimal
//!   power-limit strategy for users.
//! - Production: static CAPMC power capping — 30% of nodes uncapped, 70%
//!   capped at 270 W; SLURM Dynamic Power Management (SDPM) interfacing
//!   with CAPMC (developed with SchedMD).
//!
//! Model: dragonfly XC40, hot desert climate (high PUE sensitivity),
//! power-aware policy under a budget reflecting the 70/30 static cap mix.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::{CpuSpec, NodeSpec};
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadParams;

/// The production cap KAUST programs on 70% of Shaheen's nodes, watts.
pub const KAUST_NODE_CAP_WATTS: f64 = 270.0;

/// Fraction of nodes carrying the static cap.
pub const KAUST_CAPPED_FRACTION: f64 = 0.7;

/// Builds the KAUST site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "Shaheen II (scaled)".into(),
        cabinets: 36,
        nodes_per_cabinet: 16, // 576 nodes standing in for 6,174
        node: NodeSpec {
            cpu: CpuSpec {
                cores: 32,
                min_freq_ghz: 1.2,
                base_freq_ghz: 2.3,
                max_freq_ghz: 2.9,
                freq_steps: 16,
            },
            memory_gib: 128,
            idle_watts: 95.0,
            nominal_watts: 320.0,
            peak_watts: 425.0,
            off_watts: 9.0,
        },
        topology: Topology::Dragonfly {
            nodes_per_router: 4,
            routers_per_group: 16,
        },
        peak_tflops: 720.0,
    };
    let n = f64::from(system.total_nodes());
    // Effective budget implied by the 70/30 static cap policy:
    // 70% at 270 W + 30% at nominal.
    let budget = n
        * (KAUST_CAPPED_FRACTION * KAUST_NODE_CAP_WATTS
            + (1.0 - KAUST_CAPPED_FRACTION) * system.node.nominal_watts);
    let nominal = system.nominal_watts();
    let workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x5a0d1);
    SiteConfig {
        meta: SiteMeta {
            key: "kaust".into(),
            name: "KAUST Supercomputing Laboratory".into(),
            country: "Saudi Arabia".into(),
            lat: 22.31,
            lon: 39.10,
            motivation: "Operate within fixed data-center power and cooling limits in a hot climate; keep Shaheen and legacy systems inside one envelope".into(),
            products: vec!["SLURM (SDPM, with SchedMD)".into(), "Cray CAPMC".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.25,
            cooling_capacity_watts: nominal * 1.25,
            base_pue: 1.4,
            pue_per_degree: 0.015, // desert: cooling very temperature-sensitive
            reference_temp_c: 28.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.5,
                cost_per_mwh: 50.0,
            }],
            weather: WeatherModel {
                mean_c: 29.0,
                seasonal_amplitude_c: 7.0,
                diurnal_amplitude_c: 7.0,
                noise_std_c: 1.0,
                start_day_of_year: 100,
                seed: seed ^ 0x5a,
            },
        },
        workload,
        policy: PolicyKind::PowerAware { dvfs_fitting: false },
        power_budget_watts: Some(budget),
        shutdown: None,
        emergency: None,
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::Monitoring,
                "Monitoring and managing power usage under data center power and cooling limits",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::PowerPrediction,
                "Analyzing and detecting most power hungry applications in production; developing optimal power limit constraint strategy for users",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::PowerCapping,
                "Static power capping via Cray CAPMC: 30% of nodes uncapped, 70% capped at 270 W",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::PowerCapping,
                "SLURM Dynamic Power Management (SDPM) interfacing with Cray CAPMC (developed with SchedMD)",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaust_budget_reflects_static_cap_mix() {
        let c = config(1);
        c.validate().unwrap();
        let n = f64::from(c.system.total_nodes());
        let expect = n * (0.7 * 270.0 + 0.3 * 320.0);
        assert!((c.power_budget_watts.unwrap() - expect).abs() < 1e-6);
        // The budget is a real constraint: below uncapped nominal.
        assert!(c.power_budget_watts.unwrap() < c.system.nominal_watts());
    }
}
