//! Trinity — LANL + Sandia (Los Alamos, United States), Cray XC40.
//!
//! Table II:
//! - Research: analyzing power monitoring info to assess EPA scheduling
//!   potential; gathering traces for evaluating EPA approaches.
//! - Tech development: EPA job scheduling for MOAB/Torque with Adaptive
//!   (interfacing CAPMC and Power API); Power API implementation with
//!   Cray. Trinity now runs SLURM; the MOAB work remains available.
//! - Production: Cray CAPMC power-capping infrastructure, out-of-band
//!   control, admin-settable system-wide and node-level caps.
//!
//! Model: a large dragonfly XC machine (Haswell + KNL partitions — we
//! use the KNL node envelope for the larger partition), power-aware
//! policy with an administrator system cap.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_simcore::time::SimTime;
use epa_workload::distributions::SizeDistribution;
use epa_workload::generator::WorkloadParams;

/// Builds the Trinity site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "Trinity KNL partition (scaled)".into(),
        cabinets: 48,
        nodes_per_cabinet: 16, // 768 nodes standing in for ~9,900 KNL
        node: NodeSpec::typical_knl(),
        topology: Topology::Dragonfly {
            nodes_per_router: 4,
            routers_per_group: 16,
        },
        peak_tflops: 11_000.0,
    };
    let nominal = system.nominal_watts();
    let mut workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x717);
    // NNSA capability mission: large jobs dominate.
    workload.sizes = SizeDistribution::capability(system.total_nodes());
    SiteConfig {
        meta: SiteMeta {
            key: "trinity".into(),
            name: "Trinity (LANL + Sandia, ACES)".into(),
            country: "United States".into(),
            lat: 35.88,
            lon: -106.30,
            motivation: "Prepare for power-limited exascale procurement: understand and control a ~10 MW machine's draw under facility limits".into(),
            products: vec!["SLURM".into(), "MOAB/Torque (Adaptive)".into(), "Cray CAPMC".into(), "Power API".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.25,
            cooling_capacity_watts: nominal * 1.35,
            base_pue: 1.25,
            pue_per_degree: 0.009,
            reference_temp_c: 12.0, // high desert
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.4,
                cost_per_mwh: 65.0,
            }],
            weather: WeatherModel {
                mean_c: 11.0,
                seasonal_amplitude_c: 10.0,
                diurnal_amplitude_c: 9.0, // high-desert diurnal swing
                noise_std_c: 1.5,
                start_day_of_year: 100,
                seed: seed ^ 0x71,
            },
        },
        workload,
        policy: PolicyKind::PowerAware { dvfs_fitting: false },
        power_budget_watts: Some(nominal * 0.9), // admin system-wide cap
        shutdown: None,
        emergency: None,
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::Monitoring,
                "Analyzing power monitoring info to assess potential of EPA scheduling; gathering traces for evaluating EPA approaches",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::PowerCapping,
                "EPA job scheduling developed with Adaptive for MOAB/Torque, interfacing Cray CAPMC and Power API (Trinity now on SLURM; MOAB work remains available)",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::Monitoring,
                "Developed Power API implementation with Cray, utilized by MOAB/Torque for EPA job scheduling",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::PowerCapping,
                "Cray CAPMC power capping infrastructure: out-of-band control, admin-settable system-wide and node-level caps (all Cray XC systems)",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trinity_has_admin_cap_and_knl_nodes() {
        let c = config(1);
        c.validate().unwrap();
        assert!(c.power_budget_watts.is_some());
        assert_eq!(c.system.node.cpu.cores, 68);
        assert!(c.meta.lon < -100.0, "US site");
    }
}
