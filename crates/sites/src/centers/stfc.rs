//! STFC Hartree Centre (Daresbury, United Kingdom).
//!
//! Table II:
//! - Research: IBM/LSF energy-aware scheduling on a small (360-node)
//!   system; PowerAPI-based interface for application power measurement;
//!   power-aware policies via GEOPM + job scheduler.
//! - Tech development: user power-consumption reporting at the job level.
//! - Production: continuous power/energy monitoring at data-center,
//!   machine, and job levels.
//!
//! Model: the survey's smallest system (360 nodes, kept at true scale);
//! energy-aware policy in its experimental configuration; monitoring is
//! the production capability.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadParams;

/// Builds the STFC site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "Hartree cluster".into(),
        cabinets: 20,
        nodes_per_cabinet: 18, // exactly the 360 nodes Table II reports
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 18 },
        peak_tflops: 250.0,
    };
    let nominal = system.nominal_watts();
    let mut workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x57fc);
    // A research-leaning centre: smaller, shorter jobs.
    workload.runtimes.median = epa_simcore::time::SimDuration::from_mins(40.0);
    SiteConfig {
        meta: SiteMeta {
            key: "stfc".into(),
            name: "STFC Hartree Centre".into(),
            country: "United Kingdom".into(),
            lat: 53.34,
            lon: -2.64,
            motivation: "Industrial-facing energy-efficiency research: quantify and bill the energy each job consumes, at every level of the stack".into(),
            products: vec!["IBM LSF (energy-aware)".into(), "PowerAPI".into(), "GEOPM".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.4,
            cooling_capacity_watts: nominal * 1.5,
            base_pue: 1.3,
            pue_per_degree: 0.007,
            reference_temp_c: 10.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.5,
                cost_per_mwh: 160.0,
            }],
            weather: WeatherModel {
                mean_c: 10.0,
                seasonal_amplitude_c: 6.5,
                diurnal_amplitude_c: 4.0,
                noise_std_c: 2.2,
                start_day_of_year: 60,
                seed: seed ^ 0x57,
            },
        },
        workload,
        policy: PolicyKind::EnergyAware { energy_goal: true },
        power_budget_watts: None,
        shutdown: None,
        emergency: None,
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::EnergyAwareFrequency,
                "IBM/LSF energy-aware scheduling experimented with on a small-scale (360 node) system",
            ),
            Capability::new(
                Stage::Research,
                Mechanism::Monitoring,
                "Programmable PowerAPI-based interface for application power measurements of code segments (with interface to JSRM)",
            ),
            Capability::new(
                Stage::Research,
                Mechanism::EnergyAwareFrequency,
                "Investigation of power-aware policies using higher-level abstractions, e.g. GEOPM and the job scheduler",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::UserReporting,
                "Deployment of a reporting tool for user power consumption at the job level (fine and coarse granularity)",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::Monitoring,
                "Continuously collecting power and energy monitoring info at data center, machine, and job levels",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stfc_is_360_nodes() {
        let c = config(1);
        c.validate().unwrap();
        assert_eq!(c.system.total_nodes(), 360);
        assert!(c
            .capabilities
            .iter()
            .any(|x| x.mechanism == Mechanism::Monitoring && x.stage == Stage::Production));
    }
}
