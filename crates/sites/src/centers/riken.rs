//! RIKEN (Kobe, Japan) — the K computer.
//!
//! Table I:
//! - Research: integrating job-scheduler info with the grid vs. gas
//!   turbine supply decision.
//! - Tech development: power-aware job scheduling for Post-K with Fujitsu.
//! - Production: 3 days for large jobs each month; automated emergency
//!   job killing if the power limit is exceeded; pre-run power estimates
//!   based on temperature.
//!
//! Model: a torus machine (Tofu is 6-D; we use the 3-D model),
//! capability-heavy workload, dual supply (grid + gas co-generation),
//! emergency policy armed, temperature-scaled prediction.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_sched::emergency::EmergencyPolicy;
use epa_simcore::time::SimTime;
use epa_workload::distributions::SizeDistribution;
use epa_workload::generator::WorkloadParams;

/// Builds the RIKEN site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "K computer (scaled)".into(),
        cabinets: 32,
        nodes_per_cabinet: 16, // 512 nodes standing in for 82,944
        node: NodeSpec {
            // SPARC64 VIIIfx-flavoured envelope: low peak, narrow range.
            cpu: epa_cluster::node::CpuSpec {
                cores: 8,
                min_freq_ghz: 1.6,
                base_freq_ghz: 2.0,
                max_freq_ghz: 2.0,
                freq_steps: 4,
            },
            memory_gib: 16,
            idle_watts: 60.0,
            nominal_watts: 110.0,
            peak_watts: 130.0,
            off_watts: 5.0,
        },
        topology: Topology::Torus3D { dims: (8, 8, 8) },
        peak_tflops: 1000.0,
    };
    let idle_floor = system.idle_watts();
    let nominal = system.nominal_watts();
    let mut workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x117ce1);
    workload.sizes = SizeDistribution::capability(system.total_nodes());
    SiteConfig {
        meta: SiteMeta {
            key: "riken".into(),
            name: "RIKEN AICS".into(),
            country: "Japan".into(),
            lat: 34.65,
            lon: 135.22,
            motivation: "Stay under the facility power contract while maximizing capability throughput; exploit on-site gas co-generation".into(),
            products: vec!["Fujitsu proprietary scheduler".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.4,
            cooling_capacity_watts: nominal * 1.6,
            base_pue: 1.3,
            pue_per_degree: 0.01,
            reference_temp_c: 16.0,
            supplies: vec![
                SupplySource {
                    name: "gas-turbine".into(),
                    capacity_watts: nominal * 0.8,
                    cost_per_mwh: 70.0,
                },
                SupplySource {
                    name: "grid".into(),
                    capacity_watts: nominal,
                    cost_per_mwh: 120.0,
                },
            ],
            weather: WeatherModel {
                mean_c: 16.5,
                seasonal_amplitude_c: 11.0,
                diurnal_amplitude_c: 4.0,
                noise_std_c: 1.5,
                start_day_of_year: 150,
                seed: seed ^ 0x57ea,
            },
        },
        workload,
        policy: PolicyKind::EasyBackfill,
        power_budget_watts: Some((nominal * 0.95).max(idle_floor * 1.2)),
        shutdown: None,
        emergency: Some(EmergencyPolicy::new(nominal * 0.98)),
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::FacilityIntegration,
                "Integrating job scheduler info with decision to use grid vs. gas turbine energy",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::PowerCapping,
                "Power-aware job scheduling for Post-K, with Fujitsu",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::EmergencyResponse,
                "Automated emergency job killing if power limit exceeded",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::PowerPrediction,
                "Pre-run estimate of power usage of each job, based on temperature",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::FacilityIntegration,
                "3 days for large jobs each month",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riken_validates_and_has_dual_supply() {
        let c = config(1);
        c.validate().unwrap();
        assert_eq!(c.facility.supplies.len(), 2);
        assert!(c.emergency.is_some());
        assert!(c
            .capabilities
            .iter()
            .any(|x| x.mechanism == Mechanism::EmergencyResponse));
    }
}
