//! CINECA (Bologna, Italy).
//!
//! Table II:
//! - Research: scalable power monitoring used to predict per-job power
//!   and generate predictive models for node power and temperature
//!   evolution (with the University of Bologna).
//! - Tech development: EPA job scheduling support in SLURM with E4;
//!   tracking BULL's and SchedMD's EPA SLURM work.
//! - Production: EPA job scheduling on the Eurora system (now
//!   decommissioned) using PBS Pro, with Altair.
//!
//! Model: the MS3 site — "do less when it's too hot": a job-limiting
//! gate keyed to the Bologna summer, plus the prediction pipeline
//! (Borghesi et al. are the University of Bologna authors the survey
//! cites).

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_sched::limiting::JobLimitGate;
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadParams;

/// Builds the CINECA site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "Eurora-class cluster (scaled)".into(),
        cabinets: 16,
        nodes_per_cabinet: 16, // 256 nodes
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 350.0,
    };
    let nominal = system.nominal_watts();
    let workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0xc1ca);
    SiteConfig {
        meta: SiteMeta {
            key: "cineca".into(),
            name: "CINECA".into(),
            country: "Italy".into(),
            lat: 44.50,
            lon: 11.34,
            motivation: "Thermal and power stress in Bologna summers; research partnership with University of Bologna on prediction-driven EPA scheduling".into(),
            products: vec!["PBS Professional (Altair)".into(), "SLURM (with E4)".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.25,
            cooling_capacity_watts: nominal * 1.25,
            base_pue: 1.35,
            pue_per_degree: 0.012,
            reference_temp_c: 14.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.4,
                cost_per_mwh: 170.0,
            }],
            weather: WeatherModel {
                mean_c: 14.5,
                seasonal_amplitude_c: 11.0,
                diurnal_amplitude_c: 6.0,
                noise_std_c: 1.5,
                start_day_of_year: 170, // summer: MS3 active
                seed: seed ^ 0xc1,
            },
        },
        workload,
        policy: PolicyKind::EasyBackfill,
        power_budget_watts: None,
        shutdown: None,
        emergency: None,
        limit_gate: Some(JobLimitGate {
            normal_limit: 64,
            hot_limit: 24,
            hot_threshold_c: 28.0,
        }),
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::PowerPrediction,
                "Scalable power monitoring used to predict per-job power and generate predictive models for node power and temperature evolution (with University of Bologna)",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::PowerCapping,
                "Developing EPA job scheduling support in SLURM together with E4; tracking BULL and SchedMD EPA SLURM work",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::JobLimiting,
                "EPA job scheduling on the Eurora system (now decommissioned) using PBS Pro, collaboration with Altair — MS3: do less when it's too hot",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cineca_gates_on_heat() {
        let c = config(1);
        c.validate().unwrap();
        let g = c.limit_gate.as_ref().unwrap();
        assert!(g.hot_limit < g.normal_limit);
        assert!(c
            .capabilities
            .iter()
            .any(|x| x.mechanism == Mechanism::JobLimiting));
    }
}
