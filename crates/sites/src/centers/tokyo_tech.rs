//! Tokyo Institute of Technology (Tokyo, Japan) — TSUBAME.
//!
//! Table I:
//! - Tech development: inter-system power capping (TSUBAME2 + TSUBAME3
//!   share the facility budget).
//! - Production: RM dynamically boots/shuts down nodes to stay under the
//!   power cap (summer only, ~30 min window), cooperating with PBS Pro
//!   (NEC implemented); shuts down long-idle nodes; VM splitting
//!   (complicates shutdown); user efficiency marks; post-job energy
//!   reports.
//!
//! Model: GPU-dense fat-tree machine, capacity workload, summer-seasonal
//! shutdown policy with a boot/shutdown cost, power budget, user reports
//! rendered by the runner.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::{CpuSpec, NodeSpec};
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::WorkloadParams;

/// Builds the Tokyo Tech site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "TSUBAME3 (scaled)".into(),
        cabinets: 18,
        nodes_per_cabinet: 16, // 288 nodes standing in for 540 GPU nodes
        node: NodeSpec {
            cpu: CpuSpec {
                cores: 28,
                min_freq_ghz: 1.2,
                base_freq_ghz: 2.4,
                max_freq_ghz: 3.0,
                freq_steps: 12,
            },
            memory_gib: 256,
            idle_watts: 160.0, // GPUs idle hot
            nominal_watts: 900.0,
            peak_watts: 1200.0,
            off_watts: 12.0,
        },
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 12_000.0,
    };
    let nominal = system.nominal_watts();
    let workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x70c10);
    SiteConfig {
        meta: SiteMeta {
            key: "tokyo-tech".into(),
            name: "Tokyo Institute of Technology (GSIC)".into(),
            country: "Japan".into(),
            lat: 35.60,
            lon: 139.68,
            motivation: "Stay under the campus power cap through Japan's post-2011 summer power constraints; share budget across TSUBAME generations".into(),
            products: vec!["PBS Professional".into(), "NEC custom RM".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.2,
            cooling_capacity_watts: nominal * 1.3,
            base_pue: 1.2,
            pue_per_degree: 0.012,
            reference_temp_c: 16.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.3,
                cost_per_mwh: 130.0,
            }],
            weather: WeatherModel {
                mean_c: 16.0,
                seasonal_amplitude_c: 11.5,
                diurnal_amplitude_c: 5.0,
                noise_std_c: 1.5,
                start_day_of_year: 170, // start in summer: policy active
                seed: seed ^ 0x70,
            },
        },
        workload,
        policy: PolicyKind::EasyBackfill,
        power_budget_watts: Some(nominal * 0.8),
        shutdown: Some(ShutdownPolicy {
            idle_threshold: SimDuration::from_mins(20.0),
            shutdown_time: SimDuration::from_mins(3.0),
            boot_time: SimDuration::from_mins(8.0),
            min_idle_reserve: 4,
            season: Some((152, 244)), // summer only
        }),
        emergency: None,
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::Monitoring,
                "Activities to facilitate production development; analyze archived power/energy info for EPA scheduling",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::InterSystemSharing,
                "Inter-system power capping: TSUBAME2 and TSUBAME3 share the facility power budget",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::UserReporting,
                "Gives users mark on how well they used power and energy",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::NodeShutdown,
                "RM dynamically boots/shuts down nodes to stay under power cap (summer only, ~30 min window); shuts down long-idle nodes",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::UserReporting,
                "Energy use provided to users at end of every job",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::TopologyAware,
                "Uses virtual machines to split compute nodes (complicates physical node shutdown)",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokyo_tech_has_summer_shutdown() {
        let c = config(1);
        c.validate().unwrap();
        let sd = c.shutdown.as_ref().unwrap();
        assert_eq!(sd.season, Some((152, 244)));
        assert!(c
            .capabilities
            .iter()
            .any(|x| x.mechanism == Mechanism::NodeShutdown && x.stage == Stage::Production));
    }
}
