//! CEA (Bruyères-le-Châtel, France).
//!
//! Table I:
//! - Research: `mpi_yield_when_idle`; BULL power capping and DVFS.
//! - Tech development: power-adaptive scheduling in SLURM with BULL;
//!   "layout logic" in SLURM — know which PDUs/chillers a node depends
//!   on and avoid scheduling jobs onto them before maintenance.
//! - Production: manually shutting down nodes to shift the power budget
//!   between systems.
//!
//! Model: fat-tree cluster with an explicit PDU/chiller layout and
//! scheduled maintenance windows; power-aware SLURM-style policy with
//! DVFS fitting; a long-threshold (manual-like) shutdown policy.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::generator::WorkloadParams;

/// Builds the CEA site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "CEA cluster (scaled)".into(),
        cabinets: 24,
        nodes_per_cabinet: 16, // 384 nodes
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 500.0,
    };
    let nominal = system.nominal_watts();
    let workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0xcea);
    SiteConfig {
        meta: SiteMeta {
            key: "cea".into(),
            name: "CEA".into(),
            country: "France".into(),
            lat: 48.61,
            lon: 2.18,
            motivation: "Shift a fixed power budget between systems; keep jobs off equipment about to undergo maintenance".into(),
            products: vec!["SLURM".into(), "BULL/Atos power tooling".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.3,
            cooling_capacity_watts: nominal * 1.4,
            base_pue: 1.35,
            pue_per_degree: 0.008,
            reference_temp_c: 12.0,
            supplies: vec![SupplySource {
                name: "grid (nuclear-heavy)".into(),
                capacity_watts: nominal * 1.4,
                cost_per_mwh: 55.0,
            }],
            weather: WeatherModel {
                mean_c: 11.5,
                seasonal_amplitude_c: 8.0,
                diurnal_amplitude_c: 5.0,
                noise_std_c: 1.8,
                start_day_of_year: 60,
                seed: seed ^ 0xcea,
            },
        },
        workload,
        policy: PolicyKind::PowerAware { dvfs_fitting: true },
        power_budget_watts: Some(nominal * 0.85),
        shutdown: Some(ShutdownPolicy {
            // "Manually shutting down nodes": slow, conservative policy.
            idle_threshold: SimDuration::from_hours(2.0),
            shutdown_time: SimDuration::from_mins(5.0),
            boot_time: SimDuration::from_mins(10.0),
            min_idle_reserve: 8,
            season: None,
        }),
        emergency: None,
        limit_gate: None,
        layout_aware: true,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::EnergyAwareFrequency,
                "Investigating mpi_yield_when_idle; BULL power capping and DVFS",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::PowerCapping,
                "Developing power-adaptive scheduling in SLURM together with BULL",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::FacilityIntegration,
                "SLURM 'layout logic': know which PDUs/chillers a node depends on and avoid scheduling onto them before maintenance",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::NodeShutdown,
                "Manually shutting down nodes to shift power budget between systems",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cea_is_layout_aware() {
        let c = config(1);
        c.validate().unwrap();
        assert!(c.layout_aware);
        assert!(matches!(
            c.policy,
            PolicyKind::PowerAware { dvfs_fitting: true }
        ));
    }
}
