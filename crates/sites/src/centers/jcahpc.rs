//! JCAHPC (Kashiwa, Japan) — Oakforest-PACS.
//!
//! Joint Center for Advanced HPC, University of Tsukuba + University of
//! Tokyo. Table II:
//! - Research: activities to facilitate production development.
//! - Production: power caps for groups of nodes via the resource manager
//!   (Fujitsu proprietary); manual emergency response (admin sets a
//!   power cap); post-job energy-use reports to users.
//!
//! Model: a KNL machine (Oakforest-PACS was the largest KNL system),
//! group-level capping expressed as a power budget, a *manual* emergency
//! policy (higher trigger, larger hysteresis — a human reacts late and
//! conservatively), and user energy reports.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_sched::emergency::EmergencyPolicy;
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadParams;

/// Builds the JCAHPC site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "Oakforest-PACS (scaled)".into(),
        cabinets: 32,
        nodes_per_cabinet: 16, // 512 nodes standing in for 8,208 KNL
        node: NodeSpec::typical_knl(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 2_500.0,
    };
    let nominal = system.nominal_watts();
    let workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x1ca);
    SiteConfig {
        meta: SiteMeta {
            key: "jcahpc".into(),
            name: "JCAHPC (U. Tsukuba + U. Tokyo)".into(),
            country: "Japan".into(),
            lat: 35.90,
            lon: 139.94,
            motivation: "Operate Japan's largest KNL system within contracted power; give users visibility into the energy their jobs consume".into(),
            products: vec!["Fujitsu proprietary RM".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.3,
            cooling_capacity_watts: nominal * 1.35,
            base_pue: 1.25,
            pue_per_degree: 0.011,
            reference_temp_c: 15.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.4,
                cost_per_mwh: 125.0,
            }],
            weather: WeatherModel {
                mean_c: 15.5,
                seasonal_amplitude_c: 11.0,
                diurnal_amplitude_c: 5.0,
                noise_std_c: 1.5,
                start_day_of_year: 150,
                seed: seed ^ 0x1c,
            },
        },
        workload,
        policy: PolicyKind::EasyBackfill,
        power_budget_watts: Some(nominal * 0.92), // group caps via the RM
        shutdown: None,
        emergency: Some(EmergencyPolicy {
            // Manual response: triggers only at a clear breach and cuts
            // deep so the admin doesn't have to act twice.
            limit_watts: nominal * 1.02,
            hysteresis_fraction: 0.12,
            window: None,
            // A human responds, then watches for a while before allowing
            // new starts.
            start_cooldown: epa_simcore::time::SimDuration::from_mins(30.0),
            victim_order: epa_sched::emergency::VictimOrder::Youngest,
        }),
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::Monitoring,
                "Activities to facilitate production development",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::PowerCapping,
                "Ability to set power caps for groups of nodes via the resource manager (Fujitsu proprietary product)",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::EmergencyResponse,
                "Manual emergency response: admin sets power cap",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::UserReporting,
                "Delivering post-job energy use reports to users",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jcahpc_manual_emergency_is_conservative() {
        let c = config(1);
        c.validate().unwrap();
        let e = c.emergency.as_ref().unwrap();
        assert!(e.hysteresis_fraction > 0.1, "manual = deep cut");
        assert!(c
            .capabilities
            .iter()
            .any(|x| x.mechanism == Mechanism::UserReporting && x.stage == Stage::Production));
    }
}
