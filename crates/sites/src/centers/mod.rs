//! The nine surveyed centers, in the survey's §III listing order.

pub mod cea;
pub mod cineca;
pub mod jcahpc;
pub mod kaust;
pub mod lrz;
pub mod riken;
pub mod stfc;
pub mod tokyo_tech;
pub mod trinity;
