//! LRZ (Garching, Germany) — SuperMUC.
//!
//! Table I:
//! - Research: merging SLURM and GEOPM; scheduling for power instead of
//!   energy; linking the scheduler with IT infrastructure + cooling
//!   (delay jobs when the infrastructure is inefficient).
//! - Tech development: energy-aware scheduling in SLURM, like today's
//!   LoadLeveler capability.
//! - Production: first run of a new app characterized for frequency,
//!   runtime, and energy; administrator selects the goal — energy to
//!   solution or best performance; energy-aware LoadLeveler (with IBM),
//!   ported to LSF.
//!
//! Model: the canonical energy-aware site — [`PolicyKind::EnergyAware`]
//! with the energy-to-solution goal; tag-history characterization is the
//! engine's prediction store. European energy prices make the motivation
//! (Q1 = cost) concrete: LRZ's electricity is the most expensive in the
//! survey cohort.

use crate::config::{PolicyKind, SiteConfig, SiteMeta};
use crate::taxonomy::{Capability, Mechanism, Stage};
use epa_cluster::node::NodeSpec;
use epa_cluster::system::SystemSpec;
use epa_cluster::topology::Topology;
use epa_power::facility::{FacilityConfig, SupplySource, WeatherModel};
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadParams;

/// Builds the LRZ site model.
#[must_use]
pub fn config(seed: u64) -> SiteConfig {
    let system = SystemSpec {
        name: "SuperMUC (scaled)".into(),
        cabinets: 28,
        nodes_per_cabinet: 16, // 448 nodes standing in for 9,216
        node: NodeSpec::typical_xeon(),
        topology: Topology::FatTree { arity: 16 },
        peak_tflops: 3200.0,
    };
    let nominal = system.nominal_watts();
    let workload = WorkloadParams::typical(system.total_nodes(), seed ^ 0x142);
    SiteConfig {
        meta: SiteMeta {
            key: "lrz".into(),
            name: "Leibniz Supercomputing Centre".into(),
            country: "Germany".into(),
            lat: 48.26,
            lon: 11.67,
            motivation: "Minimize energy-to-solution: German electricity prices make energy the dominant operating cost; warm-water cooling and energy budgets in procurement".into(),
            products: vec!["IBM LoadLeveler (energy-aware)".into(), "LSF".into(), "SLURM (planned)".into()],
        },
        system,
        facility: FacilityConfig {
            site_budget_watts: nominal * 1.3,
            cooling_capacity_watts: nominal * 1.4,
            base_pue: 1.15, // warm-water cooling
            pue_per_degree: 0.006,
            reference_temp_c: 10.0,
            supplies: vec![SupplySource {
                name: "grid".into(),
                capacity_watts: nominal * 1.4,
                cost_per_mwh: 180.0, // the survey cohort's highest
            }],
            weather: WeatherModel {
                mean_c: 9.5,
                seasonal_amplitude_c: 9.5,
                diurnal_amplitude_c: 5.0,
                noise_std_c: 2.0,
                start_day_of_year: 60,
                seed: seed ^ 0x14,
            },
        },
        workload,
        policy: PolicyKind::EnergyAware { energy_goal: true },
        power_budget_watts: None,
        shutdown: None,
        emergency: None,
        limit_gate: None,
        layout_aware: false,
        horizon: SimTime::from_days(7.0),
        capabilities: vec![
            Capability::new(
                Stage::Research,
                Mechanism::EnergyAwareFrequency,
                "Investigating merging SLURM and GEOPM for system energy & power control; scheduling for power instead of energy",
            ),
            Capability::new(
                Stage::Research,
                Mechanism::FacilityIntegration,
                "Linking job scheduler with IT infrastructure + cooling; scheduler may delay jobs when infrastructure is inefficient",
            ),
            Capability::new(
                Stage::TechDevelopment,
                Mechanism::EnergyAwareFrequency,
                "Adding energy-aware scheduling capabilities to SLURM, similar to LoadLeveler today",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::PowerPrediction,
                "First time a new app runs it is characterized for frequency, runtime and energy",
            ),
            Capability::new(
                Stage::Production,
                Mechanism::EnergyAwareFrequency,
                "Administrator selects scheduling goal: energy to solution or best performance (LoadLeveler with IBM, ported to LSF)",
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lrz_runs_energy_goal() {
        let c = config(1);
        c.validate().unwrap();
        assert!(matches!(
            c.policy,
            PolicyKind::EnergyAware { energy_goal: true }
        ));
        assert!(
            c.facility.supplies[0].cost_per_mwh > 150.0,
            "expensive power is the motivation"
        );
    }
}
