//! Executes a site model and produces the report the survey engine reads.
//!
//! The runner is the glue between a [`SiteConfig`] and the `epa-sched`
//! engine: it generates the site's workload, wires the policy and
//! production mechanisms, runs the simulated week, and derives the
//! artifacts the survey needs — quantitative Q2/Q3/Q7 answers, the user
//! energy reports, and the component-interaction ledger behind Figure 1.

use crate::config::SiteConfig;
use crate::taxonomy::Capability;
use epa_cluster::layout::{Equipment, FacilityLayout, MaintenanceWindow, PduId};
use epa_power::facility::Facility;
use epa_predict::predictors::{TagMeanPredictor, TemperatureScaledPredictor};
use epa_rm::interactions::{Component, InteractionKind, InteractionLedger};
use epa_rm::reports::{EfficiencyMark, UserEnergyReport};
use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
use epa_sched::policies::registry::make_policy;
use epa_simcore::time::SimTime;
use epa_workload::generator::{WorkloadGenerator, WorkloadSummary};
use std::collections::BTreeMap;

/// Everything a site run produces.
#[derive(Debug)]
pub struct SiteReport {
    /// The site's stable key.
    pub key: String,
    /// Display name.
    pub name: String,
    /// Simulation outcome (Q7: "how well does your solution work?").
    pub outcome: SimOutcome,
    /// Workload summary (Q3, including the Q3e percentiles).
    pub workload: Option<WorkloadSummary>,
    /// Component-interaction ledger (Figure 1).
    pub interactions: InteractionLedger,
    /// Post-job user reports (sites with user reporting), mark → count.
    pub mark_distribution: BTreeMap<String, u64>,
    /// The declared Tables I/II capabilities.
    pub capabilities: Vec<Capability>,
    /// Facility-side figures: mean PUE over the run and supply cost/hour
    /// at mean draw.
    pub mean_pue: f64,
    /// Mean electricity cost rate at the run's average draw, per hour.
    pub mean_cost_per_hour: f64,
    /// Observability bundle: decision trace (per the `EPA_JSRM_TRACE`
    /// enable mask), metrics registry, and wall-clock profile.
    pub obs: epa_obs::ObsBundle,
}

/// Runs a site model to completion.
///
/// # Panics
/// Panics if the site config fails validation (configs in this crate are
/// all validated by tests; external configs should call
/// [`SiteConfig::validate`] first).
#[must_use]
pub fn run_site(site: &SiteConfig) -> SiteReport {
    site.validate().expect("invalid site config");
    let system = site.system.clone().build();
    let jobs = WorkloadGenerator::new(site.workload.clone()).generate(site.horizon, 0);
    let workload_summary = WorkloadSummary::compute(&jobs, site.system.total_nodes(), site.horizon);

    let facility = Facility::new(site.facility.clone()).expect("validated facility");
    let mut config = EngineConfig::new(site.horizon);
    config.trace = epa_obs::TraceConfig::from_env();
    config.power_budget_watts = site.power_budget_watts;
    config.shutdown = site.shutdown.clone();
    config.emergency = site.emergency.clone();
    config.limit_gate = site.limit_gate.clone();
    config.facility = Some(facility.clone());
    if site.layout_aware {
        let mut layout = FacilityLayout::regular(&system, 4, 8);
        // A representative maintenance window mid-week on PDU 0.
        layout.add_maintenance(MaintenanceWindow {
            equipment: Equipment::Pdu(PduId(0)),
            start: SimTime::from_days(3.0),
            end: SimTime::from_days(3.5),
        });
        config.layout = Some(layout);
    }

    let mut policy =
        make_policy(site.policy.registry_name()).expect("PolicyKind maps to a registered policy");

    let mut sim = ClusterSim::new(system, jobs, policy.as_mut(), config);
    if site.meta.key == "riken" {
        // RIKEN's production prediction is temperature-scaled (Table I).
        sim.set_predictor(Box::new(TemperatureScaledPredictor::new(TagMeanPredictor)));
    }
    let (outcome, obs) = sim.run_traced();

    let interactions = synthesize_interactions(site, &outcome);
    let mark_distribution = mark_distribution(site, &outcome);
    let (mean_pue, mean_cost_per_hour) = facility_figures(&facility, &outcome, site.horizon);

    SiteReport {
        key: site.meta.key.clone(),
        name: site.meta.name.clone(),
        outcome,
        workload: workload_summary,
        interactions,
        mark_distribution,
        capabilities: site.capabilities.clone(),
        mean_pue,
        mean_cost_per_hour,
        obs,
    }
}

/// Derives the Figure 1 interaction ledger from engine counters: each
/// engine-event class maps onto a component-to-component message.
fn synthesize_interactions(site: &SiteConfig, outcome: &SimOutcome) -> InteractionLedger {
    let c = &outcome.counters;
    let get = |k: &str| c.get(k).copied().unwrap_or(0);
    let mut ledger = InteractionLedger::new();
    let t = SimTime::ZERO;
    let mut record_n = |n: u64, from, to, kind| {
        for _ in 0..n.min(1_000_000) {
            ledger.record(t, from, to, kind);
        }
    };
    // Users submit jobs to the scheduler.
    record_n(
        get("jobs/submitted"),
        Component::Users,
        Component::JobScheduler,
        InteractionKind::ResourceControl,
    );
    // Scheduler instructs the RM to launch each started job.
    record_n(
        get("jobs/started"),
        Component::JobScheduler,
        Component::ResourceManager,
        InteractionKind::ResourceControl,
    );
    // The RM actuates hardware per start (allocate + launch).
    record_n(
        2 * get("jobs/started"),
        Component::ResourceManager,
        Component::Hardware,
        InteractionKind::ResourceControl,
    );
    // Scheduler consults analytics (prediction) per start.
    record_n(
        get("jobs/started"),
        Component::JobScheduler,
        Component::Analytics,
        InteractionKind::ResourceMonitor,
    );
    // Telemetry samples hardware power every tick; the RM reads telemetry.
    record_n(
        get("rm/power_ticks"),
        Component::Telemetry,
        Component::Hardware,
        InteractionKind::PowerMonitor,
    );
    record_n(
        get("rm/power_ticks"),
        Component::ResourceManager,
        Component::Telemetry,
        InteractionKind::PowerMonitor,
    );
    // Boots/shutdowns are RM → hardware power control.
    record_n(
        get("rm/boots") + get("rm/shutdowns"),
        Component::ResourceManager,
        Component::Hardware,
        InteractionKind::PowerControl,
    );
    // Emergency responses touch the facility and kill jobs.
    record_n(
        get("emergency/breaches"),
        Component::Facility,
        Component::ResourceManager,
        InteractionKind::PowerMonitor,
    );
    record_n(
        get("emergency/kills"),
        Component::ResourceManager,
        Component::Hardware,
        InteractionKind::ResourceControl,
    );
    // Sites with user reporting send a report per completed job.
    if site
        .capabilities
        .iter()
        .any(|cap| cap.mechanism == crate::taxonomy::Mechanism::UserReporting)
    {
        record_n(
            get("jobs/completed"),
            Component::ResourceManager,
            Component::Users,
            InteractionKind::ResourceMonitor,
        );
    }
    ledger
}

/// Builds the Tokyo-Tech-style end-of-job mark distribution.
fn mark_distribution(site: &SiteConfig, outcome: &SimOutcome) -> BTreeMap<String, u64> {
    let mut dist = BTreeMap::new();
    let has_reporting = site
        .capabilities
        .iter()
        .any(|c| c.mechanism == crate::taxonomy::Mechanism::UserReporting);
    if !has_reporting {
        return dist;
    }
    for job in &outcome.jobs {
        if job.run_secs <= 0.0 {
            continue;
        }
        let report = UserEnergyReport::new(
            job.id,
            0,
            job.nodes,
            job.run_secs,
            job.energy_joules,
            site.system.node.nominal_watts,
        );
        *dist.entry(report.mark.to_string()).or_insert(0) += 1;
    }
    // Guarantee all marks appear as keys for stable tables.
    for m in [
        EfficiencyMark::A,
        EfficiencyMark::B,
        EfficiencyMark::C,
        EfficiencyMark::D,
        EfficiencyMark::E,
    ] {
        dist.entry(m.to_string()).or_insert(0);
    }
    dist
}

fn facility_figures(facility: &Facility, outcome: &SimOutcome, horizon: SimTime) -> (f64, f64) {
    // Sample PUE across the run at 6 h intervals.
    let mut pue_sum = 0.0;
    let mut n = 0u32;
    let mut t = SimTime::ZERO;
    while t <= horizon {
        pue_sum += facility.pue(t);
        n += 1;
        t += epa_simcore::time::SimDuration::from_hours(6.0);
    }
    let mean_pue = pue_sum / f64::from(n.max(1));
    let dispatch = facility.dispatch(outcome.avg_watts * mean_pue);
    (mean_pue, dispatch.cost_per_hour)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centers;

    #[test]
    fn stfc_runs_and_reports() {
        // STFC: smallest machine, no budget — fastest full-feature run.
        let mut site = centers::stfc::config(7);
        site.horizon = SimTime::from_days(2.0);
        let report = run_site(&site);
        assert!(
            report.outcome.completed > 10,
            "completed {}",
            report.outcome.completed
        );
        assert!(report.outcome.utilization > 0.0);
        let w = report.workload.as_ref().unwrap();
        assert!(w.jobs > 0);
        assert!(report.interactions.total() > 0);
        assert!(report.mean_pue >= 1.0);
        assert!(report.mean_cost_per_hour > 0.0);
    }

    #[test]
    fn tokyo_tech_shutdowns_happen_and_reports_marked() {
        let mut site = centers::tokyo_tech::config(7);
        site.horizon = SimTime::from_days(2.0);
        let report = run_site(&site);
        // Summer-start + 20 min idle threshold: shutdowns must fire.
        assert!(
            report
                .outcome
                .counters
                .get("rm/shutdowns")
                .copied()
                .unwrap_or(0)
                > 0,
            "counters: {:?}",
            report.outcome.counters
        );
        // User reporting capability → mark distribution populated.
        let total: u64 = report.mark_distribution.values().sum();
        assert_eq!(total, report.outcome.completed);
    }

    #[test]
    fn riken_emergency_configured() {
        let mut site = centers::riken::config(7);
        site.horizon = SimTime::from_days(2.0);
        let report = run_site(&site);
        assert!(report.outcome.completed > 0);
        // No marks: RIKEN's Table I row has no user reporting.
        assert!(report.mark_distribution.is_empty());
    }
}
