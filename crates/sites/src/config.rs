//! Site configuration: everything a site model declares.

use crate::taxonomy::Capability;
use epa_cluster::system::SystemSpec;
use epa_power::facility::FacilityConfig;
use epa_sched::emergency::EmergencyPolicy;
use epa_sched::limiting::JobLimitGate;
use epa_sched::shutdown::ShutdownPolicy;
use epa_simcore::time::SimTime;
use epa_workload::generator::WorkloadParams;
use serde::{Deserialize, Serialize};

/// Which scheduling policy family the site runs in production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Plain FCFS.
    Fcfs,
    /// EASY backfilling, no power logic.
    EasyBackfill,
    /// Power-aware backfilling with budget admission (+ optional DVFS).
    PowerAware {
        /// Lower frequencies to fit the budget.
        dvfs_fitting: bool,
    },
    /// Energy-aware frequency selection.
    EnergyAware {
        /// True = energy-to-solution goal, false = performance goal.
        energy_goal: bool,
    },
    /// Moldable over-provisioning under a budget.
    Overprovision,
}

impl PolicyKind {
    /// The canonical name in `epa_sched::policies::registry` this kind
    /// resolves to — the single mapping the runner uses to construct the
    /// policy, so site configs cannot drift from the registry.
    #[must_use]
    pub fn registry_name(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::EasyBackfill => "easy-backfill",
            PolicyKind::PowerAware { dvfs_fitting: true } => "power-aware-backfill+dvfs",
            PolicyKind::PowerAware {
                dvfs_fitting: false,
            } => "power-aware-backfill",
            PolicyKind::EnergyAware { energy_goal: true } => "energy-aware(energy)",
            PolicyKind::EnergyAware { energy_goal: false } => "energy-aware(performance)",
            PolicyKind::Overprovision => "overprovision-moldable",
        }
    }
}

/// Descriptive metadata (Q2 context + Figure 2 geography).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteMeta {
    /// Stable key ("riken", "kaust", …).
    pub key: String,
    /// Display name.
    pub name: String,
    /// Country.
    pub country: String,
    /// Latitude, degrees north.
    pub lat: f64,
    /// Longitude, degrees east.
    pub lon: f64,
    /// Q1 motivation summary (one line).
    pub motivation: String,
    /// Vendor / product context (Q5b): the JSRM products involved.
    pub products: Vec<String>,
}

/// A full site model.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Metadata.
    pub meta: SiteMeta,
    /// The machine (scaled ~10× down from the real system).
    pub system: SystemSpec,
    /// The facility.
    pub facility: FacilityConfig,
    /// The workload.
    pub workload: WorkloadParams,
    /// Production scheduling policy.
    pub policy: PolicyKind,
    /// IT power budget for admission, if the site runs one.
    pub power_budget_watts: Option<f64>,
    /// Idle-shutdown policy, if deployed.
    pub shutdown: Option<ShutdownPolicy>,
    /// Emergency response, if deployed.
    pub emergency: Option<EmergencyPolicy>,
    /// Job-limiting gate, if deployed.
    pub limit_gate: Option<JobLimitGate>,
    /// Whether the site runs layout-aware scheduling (CEA).
    pub layout_aware: bool,
    /// Simulated span for the site run.
    pub horizon: SimTime,
    /// Tables I/II capability rows.
    pub capabilities: Vec<Capability>,
}

impl SiteConfig {
    /// Validates the configuration end to end.
    pub fn validate(&self) -> Result<(), String> {
        self.system.validate()?;
        self.facility.validate().map_err(|e| e.to_string())?;
        if self.capabilities.is_empty() {
            return Err("site must declare at least one capability".into());
        }
        if let Some(b) = self.power_budget_watts {
            if b <= 0.0 {
                return Err("power budget must be positive".into());
            }
            if b < self.system.idle_watts() {
                return Err(format!(
                    "budget {} W below idle floor {} W — nothing could ever run",
                    b,
                    self.system.idle_watts()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{Mechanism, Stage};
    use epa_cluster::node::NodeSpec;
    use epa_cluster::topology::Topology;

    fn minimal() -> SiteConfig {
        SiteConfig {
            meta: SiteMeta {
                key: "x".into(),
                name: "X".into(),
                country: "Y".into(),
                lat: 0.0,
                lon: 0.0,
                motivation: "test".into(),
                products: vec![],
            },
            system: SystemSpec {
                name: "sys".into(),
                cabinets: 2,
                nodes_per_cabinet: 8,
                node: NodeSpec::typical_xeon(),
                topology: Topology::FatTree { arity: 8 },
                peak_tflops: 1.0,
            },
            facility: epa_power::facility::FacilityConfig::simple(1e6),
            workload: epa_workload::generator::WorkloadParams::typical(16, 1),
            policy: PolicyKind::EasyBackfill,
            power_budget_watts: None,
            shutdown: None,
            emergency: None,
            limit_gate: None,
            layout_aware: false,
            horizon: SimTime::from_days(1.0),
            capabilities: vec![Capability::new(
                Stage::Production,
                Mechanism::Monitoring,
                "test",
            )],
        }
    }

    #[test]
    fn minimal_validates() {
        minimal().validate().unwrap();
    }

    #[test]
    fn empty_capabilities_rejected() {
        let mut c = minimal();
        c.capabilities.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn budget_below_idle_floor_rejected() {
        let mut c = minimal();
        // 16 nodes × 90 W idle = 1440 W floor.
        c.power_budget_watts = Some(1000.0);
        assert!(c.validate().is_err());
        c.power_budget_watts = Some(5000.0);
        assert!(c.validate().is_ok());
    }
}
