//! Crash-safe engine snapshots.
//!
//! A [`Snapshot`] is the full mutable state of a
//! [`ClusterSim`](crate::engine::ClusterSim) frozen at a window barrier —
//! the point between two global events where no shard window is in
//! flight. It is a self-describing binary frame (see
//! [`epa_simcore::snap`]): magic, schema version, payload length, and an
//! FNV-1a-64 checksum guard the payload; named section markers frame each
//! component's state so a decode failure reports *which* subsystem's
//! bytes went bad.
//!
//! The determinism contract: a run killed at any barrier and resumed from
//! its latest snapshot produces a [`SimOutcome`](crate::engine::SimOutcome)
//! and an exported decision trace byte-identical to the uninterrupted
//! run, at any shard count × thread count the snapshot's shard layout
//! admits (thread count is free to change across the boundary; the shard
//! count must match the snapshot's, because mailbox state is per-shard).
//!
//! Configuration is deliberately *not* stored: the caller re-supplies the
//! system, workload, policy, and [`EngineConfig`](crate::engine::EngineConfig)
//! at resume, and a config fingerprint embedded in the snapshot rejects a
//! mismatched resume with a typed
//! [`SnapshotError`](epa_simcore::snap::SnapshotError) instead of
//! silently diverging.

use epa_simcore::snap::SnapshotError;
use std::io;
use std::path::Path;

/// Schema version of the engine snapshot payload. Bump on any layout
/// change; [`SnapReader::open`](epa_simcore::snap::SnapReader::open)
/// rejects mismatches with a typed error. v2 added the `arrivals`
/// section (streaming source cursor + completion aggregates); v3 added
/// the `control` section (control-plane knob state, so a learned
/// controller's overrides survive a crash/resume); v4 added the `grid`
/// section (facility-twin cursors and cost/carbon/DR accumulators, plus
/// two new wire tags for DR-window events in the global queue).
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 4;

/// A frozen engine state: an owned, framed, checksummed byte buffer.
///
/// Produced by [`ClusterSim::snapshot`](crate::engine::ClusterSim::snapshot)
/// or [`ClusterSim::run_until`](crate::engine::ClusterSim::run_until);
/// consumed by [`ClusterSim::resume`](crate::engine::ClusterSim::resume).
/// The bytes are portable across processes — write them to disk with
/// [`Snapshot::save`] and recover after a crash with [`Snapshot::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps raw bytes (e.g. read from disk). No validation happens here;
    /// [`ClusterSim::resume`](crate::engine::ClusterSim::resume) validates
    /// magic, version, checksum, topology, and config fingerprint.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Snapshot { bytes }
    }

    /// The framed snapshot bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the framed bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total size in bytes (header + payload).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the buffer is empty (never produced by the engine; an
    /// empty buffer fails restore with a truncation error).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Writes the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, &self.bytes)
    }

    /// Reads a snapshot from a file. The contents are validated at
    /// resume, not here.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Snapshot {
            bytes: std::fs::read(path)?,
        })
    }

    /// Cheap structural pre-check: validates the frame (magic, version,
    /// length, checksum) without decoding any state. Useful for picking
    /// the latest *intact* snapshot out of a crash directory.
    pub fn verify_frame(&self) -> Result<(), SnapshotError> {
        epa_simcore::snap::SnapReader::open(&self.bytes, SNAPSHOT_SCHEMA_VERSION).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bytes_roundtrip() {
        let s = Snapshot::from_bytes(vec![1, 2, 3]);
        assert_eq!(s.as_bytes(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.clone().into_bytes(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_frame_fails_verification() {
        let s = Snapshot::from_bytes(Vec::new());
        assert!(matches!(
            s.verify_frame().unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("epa-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let s = Snapshot::from_bytes(vec![9, 8, 7, 6]);
        s.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded, s);
        let _ = std::fs::remove_file(&path);
    }
}
