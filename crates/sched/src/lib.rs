//! # epa-sched — job scheduling framework and EPA policies
//!
//! The heart of the reproduction: a discrete-event cluster scheduling
//! engine ([`engine::ClusterSim`]) plus one policy implementation for
//! every energy/power-aware technique the survey catalogues.
//!
//! ## Baselines (Mu'alem & Feitelson)
//! - [`policies::fcfs::Fcfs`] — first-come-first-served.
//! - [`policies::backfill::EasyBackfill`] — aggressive (EASY) backfilling.
//! - [`policies::backfill::ConservativeBackfill`] — conservative
//!   backfilling (every queued job holds a reservation).
//!
//! ## EPA policies from the survey's Tables I/II and related work
//! - [`policies::power_aware::PowerAwareBackfill`] — backfilling with a
//!   power-budget admission test and optional DVFS fitting (Etinski).
//! - [`policies::energy_aware::EnergyAwareScheduler`] — per-job frequency
//!   selection toward an administrator goal: energy-to-solution or
//!   performance (LRZ's LoadLeveler/LSF capability).
//! - [`policies::overprovision::OverprovisionScheduler`] — moldable-job
//!   configuration selection under a hard system power budget
//!   (Sarood, Patki).
//! - [`policies::power_sharing::PowerSharingManager`] — Ellsworth-style
//!   dynamic redistribution of unused power among running jobs.
//! - [`emergency::EmergencyPolicy`] — RIKEN's automated job killing when
//!   the site power limit is breached.
//! - [`shutdown::ShutdownPolicy`] — idle-node power-down
//!   (Mämmelä; Tokyo Tech's production capability).
//! - [`limiting::JobLimitGate`] — CINECA MS3: cap concurrent jobs when the
//!   facility is hot ("do less when it's too hot").
//! - [`intersystem::InterSystemCoordinator`] — Tokyo Tech's shared
//!   facility budget between two systems (TSUBAME 2 and 3).

pub mod control;
pub mod emergency;
pub mod engine;
pub mod env;
pub mod error;
pub mod governor;
pub mod intersystem;
pub mod learn;
pub mod limiting;
pub mod policies;
pub mod queue;
pub mod shards;
pub mod shutdown;
pub mod snapshot;
pub mod view;

pub use control::{ActionSource, ControlAction, ControlMode, ControlState, Observation};
pub use emergency::EmergencyPolicy;
pub use engine::{ClusterSim, EngineConfig, RewardProbe, SimOutcome};
pub use env::{EnvConfig, PolicyEnv, RewardConfig, StepResult};
pub use error::SchedError;
pub use governor::{GovernorObjective, PhaseGovernor, PhasePlan};
pub use intersystem::InterSystemCoordinator;
pub use learn::{ActionCatalog, BanditConfig, ContextualBandit, QConfig, QLearner, TileCoding};
pub use limiting::JobLimitGate;
pub use queue::JobQueue;
pub use shutdown::ShutdownPolicy;
pub use snapshot::{Snapshot, SNAPSHOT_SCHEMA_VERSION};
pub use view::{Decision, Policy, RunningSummary, SchedView};
