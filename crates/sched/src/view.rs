//! The policy interface: what schedulers see and what they decide.
//!
//! A [`Policy`] is invoked by the engine whenever scheduling state changes
//! (job arrival, job completion, node boot, power tick). It receives an
//! immutable [`SchedView`] — the information a real scheduler would have:
//! free nodes, running jobs with *estimated* (not true) end times, power
//! headroom, temperature — and returns [`Decision`]s. The engine applies
//! them, enforcing physical constraints (allocation, power budget) so a
//! buggy policy can never corrupt the machine state.

use epa_power::dvfs::DvfsModel;
use epa_simcore::time::SimTime;
use epa_workload::job::{Job, JobId};
use serde::Serialize;

/// What a policy knows about one running job.
#[derive(Debug, Clone, Serialize)]
pub struct RunningSummary {
    /// Job id.
    pub id: JobId,
    /// Nodes held.
    pub nodes: u32,
    /// Estimated end time (start + walltime estimate — the scheduler does
    /// not know true runtimes).
    pub estimated_end: SimTime,
    /// Power currently drawn by the job's nodes, watts.
    pub watts: f64,
    /// Power grant held, if the engine runs a budget, watts.
    pub granted_watts: Option<f64>,
}

/// The scheduler's view of the machine at a decision point.
pub struct SchedView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Nodes free and allocatable right now.
    pub free_nodes: u32,
    /// Nodes powered off that the engine could boot on demand.
    pub off_nodes: u32,
    /// Total nodes in the system.
    pub total_nodes: u32,
    /// Running jobs, soonest estimated end first.
    pub running: &'a [RunningSummary],
    /// Power budget headroom (`f64::INFINITY` when no budget is active).
    pub power_headroom_watts: f64,
    /// Total power budget (`f64::INFINITY` when none).
    pub power_budget_watts: f64,
    /// Current system IT power draw, watts.
    pub system_watts: f64,
    /// Outdoor temperature, °C.
    pub temperature_c: f64,
    /// DVFS model of the node type (for frequency planning).
    pub dvfs: &'a DvfsModel,
    /// Predicted watts-per-node for a queued job, as configured in the
    /// engine (prediction-based policies read this instead of cheating
    /// with true power).
    pub predicted_watts_per_node: &'a dyn Fn(&Job) -> f64,
}

impl SchedView<'_> {
    /// Estimated time at which `nodes_needed` nodes will be free, assuming
    /// running jobs end at their estimates and nothing new starts — the
    /// "shadow time" of EASY backfilling. Off nodes are not counted; the
    /// engine boots them separately when demand warrants.
    #[must_use]
    pub fn shadow_time(&self, nodes_needed: u32) -> Option<SimTime> {
        if nodes_needed <= self.free_nodes {
            return Some(self.now);
        }
        let mut avail = self.free_nodes;
        for r in self.running {
            avail += r.nodes;
            if avail >= nodes_needed {
                return Some(r.estimated_end);
            }
        }
        None
    }
}

/// A policy's instruction to the engine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Decision {
    /// Start the queued job with this id.
    Start {
        /// The job to start.
        job: JobId,
        /// Moldable node-count override (must satisfy the job's moldable
        /// range; ignored for rigid jobs).
        nodes_override: Option<u32>,
        /// Frequency to run at (GHz); `None` = base frequency.
        freq_ghz: Option<f64>,
        /// Per-node hardware cap to program before launch, watts.
        node_cap_watts: Option<f64>,
    },
}

impl Decision {
    /// Convenience: start a job with defaults.
    #[must_use]
    pub fn start(job: JobId) -> Self {
        Decision::Start {
            job,
            nodes_override: None,
            freq_ghz: None,
            node_cap_watts: None,
        }
    }
}

/// A scheduling policy.
pub trait Policy {
    /// Name for reports.
    fn name(&self) -> &str;

    /// Produce decisions for the current state. `queue` is in priority
    /// order. Jobs not started simply wait.
    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_cluster::node::NodeSpec;

    fn summaries() -> Vec<RunningSummary> {
        vec![
            RunningSummary {
                id: JobId(1),
                nodes: 4,
                estimated_end: SimTime::from_secs(100.0),
                watts: 400.0,
                granted_watts: None,
            },
            RunningSummary {
                id: JobId(2),
                nodes: 8,
                estimated_end: SimTime::from_secs(200.0),
                watts: 800.0,
                granted_watts: None,
            },
        ]
    }

    #[test]
    fn shadow_time_progression() {
        let dvfs = DvfsModel::new(NodeSpec::typical_xeon());
        let running = summaries();
        let predict = |_: &Job| 290.0;
        let view = SchedView {
            now: SimTime::from_secs(50.0),
            free_nodes: 2,
            off_nodes: 0,
            total_nodes: 14,
            running: &running,
            power_headroom_watts: f64::INFINITY,
            power_budget_watts: f64::INFINITY,
            system_watts: 1200.0,
            temperature_c: 20.0,
            dvfs: &dvfs,
            predicted_watts_per_node: &predict,
        };
        // 2 free now.
        assert_eq!(view.shadow_time(2), Some(SimTime::from_secs(50.0)));
        // Needs job 1's 4 nodes: at t=100.
        assert_eq!(view.shadow_time(5), Some(SimTime::from_secs(100.0)));
        // Needs both: at t=200.
        assert_eq!(view.shadow_time(14), Some(SimTime::from_secs(200.0)));
        // More than the machine: never.
        assert_eq!(view.shadow_time(15), None);
    }

    #[test]
    fn decision_start_defaults() {
        let d = Decision::start(JobId(7));
        assert_eq!(
            d,
            Decision::Start {
                job: JobId(7),
                nodes_override: None,
                freq_ghz: None,
                node_cap_watts: None
            }
        );
    }
}
