//! Power-aware backfilling (Etinski et al.; Bodas et al.).
//!
//! Extends EASY backfilling with a power admission test: a job may start
//! only if its *predicted* power fits the budget headroom. When it does
//! not fit at base frequency, the policy optionally searches the DVFS
//! ladder downward for a frequency whose power fits — trading runtime for
//! admission, exactly Etinski's "power budget guided" job scheduling.

use crate::policies::backfill::EasyBackfill;
use crate::view::{Decision, Policy, SchedView};
use epa_workload::job::Job;

/// EASY backfilling with power admission and optional DVFS fitting.
#[derive(Debug, Clone, Copy)]
pub struct PowerAwareBackfill {
    /// When true, jobs that do not fit the headroom at base frequency are
    /// retried at reduced frequencies down the ladder.
    pub dvfs_fitting: bool,
    /// Safety margin: only admit while predicted + margin ≤ headroom.
    pub margin_watts: f64,
}

impl Default for PowerAwareBackfill {
    fn default() -> Self {
        PowerAwareBackfill {
            dvfs_fitting: true,
            margin_watts: 0.0,
        }
    }
}

impl Policy for PowerAwareBackfill {
    fn name(&self) -> &str {
        if self.dvfs_fitting {
            "power-aware-backfill+dvfs"
        } else {
            "power-aware-backfill"
        }
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        // Delegate job *selection* to EASY, then filter by power and
        // annotate with frequencies.
        let mut inner = EasyBackfill;
        let candidates = inner.schedule(view, queue);
        let mut headroom = view.power_headroom_watts - self.margin_watts;
        let mut out = Vec::new();
        for d in candidates {
            let Decision::Start { job: id, .. } = d;
            let Some(job) = queue.iter().find(|j| j.id == id) else {
                continue;
            };
            let predicted = (view.predicted_watts_per_node)(job);
            let need = predicted * f64::from(job.nodes);
            if need > view.power_budget_watts {
                // The job can never fit the budget as requested — pass it
                // through and let the resource manager program a hardware
                // cap that makes it fit (the CAPMC production practice);
                // holding it here would head-block the queue forever.
                out.push(Decision::start(id));
                continue;
            }
            if need <= headroom {
                headroom -= need;
                out.push(Decision::start(id));
                continue;
            }
            if !self.dvfs_fitting {
                continue;
            }
            // Search the ladder downward: scale the prediction by the DVFS
            // busy-power ratio at each step.
            let base = view.dvfs.cpu().base_freq_ghz;
            let base_busy = view.dvfs.busy_watts(base);
            let mut ladder = view.dvfs.cpu().frequency_ladder();
            ladder.retain(|&f| f < base);
            ladder.reverse(); // highest first
            for f in ladder {
                let scale = view.dvfs.busy_watts(f) / base_busy;
                let scaled = need * scale;
                if scaled <= headroom {
                    headroom -= scaled;
                    out.push(Decision::Start {
                        job: id,
                        nodes_override: None,
                        freq_ghz: Some(f),
                        node_cap_watts: None,
                    });
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_cluster::node::NodeSpec;
    use epa_power::dvfs::DvfsModel;
    use epa_simcore::time::SimTime;
    use epa_workload::job::{JobBuilder, JobId};

    fn dvfs() -> DvfsModel {
        DvfsModel::new(NodeSpec::typical_xeon())
    }

    fn view<'a>(
        free: u32,
        headroom: f64,
        dvfs: &'a DvfsModel,
        predict: &'a dyn Fn(&Job) -> f64,
    ) -> SchedView<'a> {
        SchedView {
            now: SimTime::ZERO,
            free_nodes: free,
            off_nodes: 0,
            total_nodes: 64,
            running: &[],
            power_headroom_watts: headroom,
            // A large budget: these tests exercise the headroom paths
            // (transient scarcity), not the over-budget pass-through.
            power_budget_watts: 1e9,
            system_watts: 0.0,
            temperature_c: 20.0,
            dvfs,
            predicted_watts_per_node: predict,
        }
    }

    #[test]
    fn admits_within_headroom() {
        let d = dvfs();
        let predict = |_: &Job| 250.0;
        let queue = vec![JobBuilder::new(1).nodes(2).build()];
        let mut p = PowerAwareBackfill::default();
        let v = view(8, 600.0, &d, &predict);
        assert_eq!(p.schedule(&v, &queue), vec![Decision::start(JobId(1))]);
    }

    #[test]
    fn rejects_without_dvfs_when_over_headroom() {
        let d = dvfs();
        let predict = |_: &Job| 250.0;
        let queue = vec![JobBuilder::new(1).nodes(4).build()]; // needs 1000 W
        let mut p = PowerAwareBackfill {
            dvfs_fitting: false,
            margin_watts: 0.0,
        };
        let v = view(8, 600.0, &d, &predict);
        assert!(p.schedule(&v, &queue).is_empty());
    }

    #[test]
    fn dvfs_fitting_lowers_frequency_to_fit() {
        let d = dvfs();
        let predict = |_: &Job| 290.0; // base busy power
        let queue = vec![JobBuilder::new(1).nodes(4).build()]; // 1160 W at base
        let mut p = PowerAwareBackfill::default();
        let v = view(8, 900.0, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions.len(), 1);
        match &decisions[0] {
            Decision::Start {
                freq_ghz: Some(f), ..
            } => {
                assert!(*f < d.cpu().base_freq_ghz);
                // Scaled power must fit.
                let scale = d.busy_watts(*f) / d.busy_watts(d.cpu().base_freq_ghz);
                assert!(1160.0 * scale <= 900.0 + 1e-6);
            }
            other => panic!("expected DVFS-fitted start, got {other:?}"),
        }
    }

    #[test]
    fn impossible_even_at_min_freq_rejected() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let queue = vec![JobBuilder::new(1).nodes(4).build()];
        let mut p = PowerAwareBackfill::default();
        // Headroom below even min-frequency draw (~4×150 W).
        let v = view(8, 100.0, &d, &predict);
        assert!(p.schedule(&v, &queue).is_empty());
    }

    #[test]
    fn margin_reserved() {
        let d = dvfs();
        let predict = |_: &Job| 100.0;
        let queue = vec![JobBuilder::new(1).nodes(1).build()];
        let mut p = PowerAwareBackfill {
            dvfs_fitting: false,
            margin_watts: 550.0,
        };
        let v = view(8, 600.0, &d, &predict);
        assert!(p.schedule(&v, &queue).is_empty(), "100 > 600-550");
    }

    #[test]
    fn over_budget_job_passes_through_for_capping() {
        // A job whose predicted power exceeds the *total* budget must not
        // head-block the queue: the policy forwards it and the engine's
        // cap-to-fit takes over.
        let d = dvfs();
        let predict = |_: &Job| 250.0;
        let queue = vec![JobBuilder::new(1).nodes(4).build()]; // 1000 W
        let mut p = PowerAwareBackfill {
            dvfs_fitting: false,
            margin_watts: 0.0,
        };
        let v = SchedView {
            power_budget_watts: 600.0, // total budget below the need
            power_headroom_watts: 600.0,
            ..view(8, 600.0, &d, &predict)
        };
        assert_eq!(p.schedule(&v, &queue), vec![Decision::start(JobId(1))]);
    }

    #[test]
    fn headroom_consumed_across_decisions() {
        let d = dvfs();
        let predict = |_: &Job| 250.0;
        let queue = vec![
            JobBuilder::new(1).nodes(2).build(), // 500 W
            JobBuilder::new(2).nodes(2).build(), // 500 W, only 100 left
        ];
        let mut p = PowerAwareBackfill {
            dvfs_fitting: false,
            margin_watts: 0.0,
        };
        let v = view(8, 600.0, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions, vec![Decision::start(JobId(1))]);
    }
}
