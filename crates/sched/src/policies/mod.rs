//! Scheduling policies: baselines and EPA variants.

pub mod backfill;
pub mod energy_aware;
pub mod fcfs;
pub mod overprovision;
pub mod power_aware;
pub mod power_sharing;
pub mod registry;

pub use backfill::{ConservativeBackfill, EasyBackfill};
pub use energy_aware::{EnergyAwareScheduler, SchedulingGoal};
pub use fcfs::Fcfs;
pub use overprovision::OverprovisionScheduler;
pub use power_aware::PowerAwareBackfill;
pub use power_sharing::PowerSharingManager;
pub use registry::{make_policy, POLICY_NAMES};
