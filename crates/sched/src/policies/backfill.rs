//! Backfilling schedulers (Mu'alem & Feitelson, cited by the survey).
//!
//! - **EASY** (aggressive): the head job gets one reservation at its
//!   shadow time; any later job may start now if it fits in the free nodes
//!   and either finishes (by its *estimate*) before the shadow time or
//!   uses only nodes beyond what the head will need ("extra" nodes).
//! - **Conservative**: every queued job gets a reservation; a job may
//!   start early only if it delays no reservation. We implement it with a
//!   full availability profile simulation.
//!
//! Both operate on walltime *estimates*, never true runtimes — estimate
//! inaccuracy is precisely what makes EASY effective in practice.

use crate::view::{Decision, Policy, SchedView};
use epa_simcore::time::SimTime;
use epa_workload::job::Job;

/// EASY (aggressive) backfilling.
#[derive(Debug, Clone, Copy, Default)]
pub struct EasyBackfill;

impl Policy for EasyBackfill {
    fn name(&self) -> &str {
        "easy-backfill"
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        let mut out = Vec::new();
        let mut free = view.free_nodes;
        let mut remaining: Vec<&Job> = queue.iter().collect();

        // Start jobs from the head while they fit.
        while let Some(job) = remaining.first() {
            if job.nodes <= free {
                free -= job.nodes;
                out.push(Decision::start(job.id));
                remaining.remove(0);
            } else {
                break;
            }
        }
        let Some(head) = remaining.first() else {
            return out;
        };

        // Shadow time for the (blocked) head, over current running jobs.
        // Jobs we just started are not in `view.running`, but they consumed
        // `free`, which the shadow computation accounts for via the reduced
        // free count: we recompute availability from the view's running
        // list plus our own starts being conservative (they end late).
        let mut avail = free;
        let mut shadow: Option<SimTime> = None;
        let mut extra: u32 = 0;
        if head.nodes <= avail {
            shadow = Some(view.now);
        } else {
            for r in view.running {
                avail += r.nodes;
                if avail >= head.nodes {
                    shadow = Some(r.estimated_end);
                    extra = avail - head.nodes;
                    break;
                }
            }
        }
        let Some(shadow) = shadow else {
            // Head can never run (bigger than machine); skip backfill
            // entirely to avoid starving it forever is moot — just backfill.
            for job in &remaining[1..] {
                if job.nodes <= free {
                    free -= job.nodes;
                    out.push(Decision::start(job.id));
                }
            }
            return out;
        };

        // Backfill the rest: fits now AND (ends before shadow OR within
        // the extra nodes).
        for job in &remaining[1..] {
            if job.nodes > free {
                continue;
            }
            let est_end = view.now + job.walltime_estimate;
            let fits_time = est_end <= shadow;
            let fits_extra = job.nodes <= extra;
            if fits_time || fits_extra {
                free -= job.nodes;
                if fits_extra && !fits_time {
                    extra -= job.nodes;
                }
                out.push(Decision::start(job.id));
            }
        }
        out
    }
}

/// Conservative backfilling: no queued job's reservation may be delayed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConservativeBackfill;

impl Policy for ConservativeBackfill {
    fn name(&self) -> &str {
        "conservative-backfill"
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        // Build an availability profile: (time, nodes that become free).
        // Profile events from running jobs' estimated ends.
        let mut out = Vec::new();
        let mut profile = Profile::new(view.now, view.free_nodes, view.total_nodes);
        for r in view.running {
            // Running jobs are already in busy_now; only their release
            // matters for the future profile.
            profile.add_release(r.estimated_end, r.nodes);
        }
        // Reserve every job in order at its earliest feasible slot; a job
        // whose earliest slot is *now* starts immediately.
        for job in queue {
            let start = profile.earliest_start(job.nodes, job.walltime_estimate.as_secs());
            profile.add_busy(start, start + job.walltime_estimate, job.nodes);
            if start == view.now {
                out.push(Decision::start(job.id));
            }
        }
        out
    }
}

/// A stepwise free-node profile over future time.
struct Profile {
    now: SimTime,
    total: u32,
    /// Sorted change points: (time, busy-node delta).
    deltas: Vec<(SimTime, i64)>,
    busy_now: u32,
}

impl Profile {
    fn new(now: SimTime, free_now: u32, total: u32) -> Self {
        Profile {
            now,
            total,
            deltas: Vec::new(),
            busy_now: total - free_now,
        }
    }

    /// Registers the future release of a currently-running job.
    fn add_release(&mut self, at: SimTime, nodes: u32) {
        self.deltas.push((at, -i64::from(nodes)));
        self.deltas.sort_by_key(|d| d.0);
    }

    /// Registers a reservation `[from, to)` (from is at or after now).
    fn add_busy(&mut self, from: SimTime, to: SimTime, nodes: u32) {
        if to <= from {
            return;
        }
        self.deltas.push((from.max(self.now), i64::from(nodes)));
        self.deltas.push((to, -i64::from(nodes)));
        self.deltas.sort_by_key(|d| d.0);
    }

    /// Earliest time ≥ now at which `nodes` are continuously free for
    /// `duration_secs`.
    fn earliest_start(&self, nodes: u32, duration_secs: f64) -> SimTime {
        // Candidate starts: now and every delta time.
        let mut candidates: Vec<SimTime> = vec![self.now];
        candidates.extend(self.deltas.iter().map(|d| d.0).filter(|&t| t > self.now));
        candidates.sort();
        candidates.dedup();
        for &start in &candidates {
            let end = start + epa_simcore::time::SimDuration::from_secs(duration_secs);
            if self.window_fits(start, end, nodes) {
                return start;
            }
        }
        // Fallback: after everything ends.
        self.deltas.last().map_or(self.now, |d| d.0)
    }

    fn window_fits(&self, from: SimTime, to: SimTime, nodes: u32) -> bool {
        // Busy count as a function of time, scanning deltas.
        // busy(t) = busy_now + Σ deltas at or before t: running jobs start
        // inside busy_now and subtract at release; reservations add at
        // their start and subtract at their end.
        let mut busy = i64::from(self.busy_now);
        let mut idx = 0;
        while idx < self.deltas.len() && self.deltas[idx].0 <= from {
            busy += self.deltas[idx].1;
            idx += 1;
        }
        if busy + i64::from(nodes) > i64::from(self.total) {
            return false;
        }
        while idx < self.deltas.len() && self.deltas[idx].0 < to {
            busy += self.deltas[idx].1;
            if busy + i64::from(nodes) > i64::from(self.total) {
                return false;
            }
            idx += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::RunningSummary;
    use epa_cluster::node::NodeSpec;
    use epa_power::dvfs::DvfsModel;
    use epa_simcore::time::{SimDuration, SimTime};
    use epa_workload::job::{JobBuilder, JobId};

    fn dvfs() -> DvfsModel {
        DvfsModel::new(NodeSpec::typical_xeon())
    }

    fn running(id: u64, nodes: u32, end_secs: f64) -> RunningSummary {
        RunningSummary {
            id: JobId(id),
            nodes,
            estimated_end: SimTime::from_secs(end_secs),
            watts: 0.0,
            granted_watts: None,
        }
    }

    fn view<'a>(
        free: u32,
        total: u32,
        running: &'a [RunningSummary],
        dvfs: &'a DvfsModel,
        predict: &'a dyn Fn(&Job) -> f64,
    ) -> SchedView<'a> {
        SchedView {
            now: SimTime::ZERO,
            free_nodes: free,
            off_nodes: 0,
            total_nodes: total,
            running,
            power_headroom_watts: f64::INFINITY,
            power_budget_watts: f64::INFINITY,
            system_watts: 0.0,
            temperature_c: 20.0,
            dvfs,
            predicted_watts_per_node: predict,
        }
    }

    #[test]
    fn easy_backfills_short_job_behind_blocked_head() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        // 10-node machine: 6 busy until t=1000, 4 free.
        let run = [running(100, 6, 1000.0)];
        // Head needs 8 (blocked until t=1000); a 2-node 500 s job fits
        // before the shadow.
        let queue = vec![
            JobBuilder::new(1).nodes(8).build(),
            JobBuilder::new(2)
                .nodes(2)
                .estimate(SimDuration::from_secs(500.0))
                .runtime(SimDuration::from_secs(400.0))
                .build(),
        ];
        let mut p = EasyBackfill;
        let v = view(4, 10, &run, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions, vec![Decision::start(JobId(2))]);
    }

    #[test]
    fn easy_rejects_backfill_that_delays_head() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let run = [running(100, 6, 1000.0)];
        // Backfill candidate runs past the shadow (estimate 2000 s) and
        // needs 4 > extra (extra = 4+6-8 = 2).
        let queue = vec![
            JobBuilder::new(1).nodes(8).build(),
            JobBuilder::new(2)
                .nodes(4)
                .estimate(SimDuration::from_secs(2000.0))
                .runtime(SimDuration::from_secs(1500.0))
                .build(),
        ];
        let mut p = EasyBackfill;
        let v = view(4, 10, &run, &d, &predict);
        assert!(p.schedule(&v, &queue).is_empty());
    }

    #[test]
    fn easy_allows_long_backfill_on_extra_nodes() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let run = [running(100, 6, 1000.0)];
        // Extra nodes = 2; a 2-node job of any length may take them.
        let queue = vec![
            JobBuilder::new(1).nodes(8).build(),
            JobBuilder::new(2)
                .nodes(2)
                .estimate(SimDuration::from_hours(10.0))
                .runtime(SimDuration::from_hours(9.0))
                .build(),
        ];
        let mut p = EasyBackfill;
        let v = view(4, 10, &run, &d, &predict);
        assert_eq!(p.schedule(&v, &queue), vec![Decision::start(JobId(2))]);
    }

    #[test]
    fn easy_starts_head_when_it_fits() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let queue = vec![
            JobBuilder::new(1).nodes(4).build(),
            JobBuilder::new(2).nodes(4).build(),
        ];
        let mut p = EasyBackfill;
        let v = view(10, 10, &[], &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions.len(), 2);
    }

    #[test]
    fn conservative_starts_only_non_delaying_jobs() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let run = [running(100, 6, 1000.0)];
        // Head (8 nodes) reserved at t=1000 on 10-node machine; after its
        // reservation [1000, 1000+est], a 4-node job reserving later must
        // not start now if it would collide with the head's window —
        // 2-node jobs shorter than 1000 s may.
        let queue = vec![
            JobBuilder::new(1)
                .nodes(8)
                .estimate(SimDuration::from_secs(4000.0))
                .runtime(SimDuration::from_secs(3000.0))
                .build(),
            JobBuilder::new(2)
                .nodes(2)
                .estimate(SimDuration::from_secs(800.0))
                .runtime(SimDuration::from_secs(700.0))
                .build(),
            JobBuilder::new(3)
                .nodes(4)
                .estimate(SimDuration::from_secs(600.0))
                .runtime(SimDuration::from_secs(500.0))
                .build(),
        ];
        let mut p = ConservativeBackfill;
        let v = view(4, 10, &run, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        // Job 2 fits now (2 ≤ 4 free, ends at 800 < 1000, and after job 2
        // reserves, job 3 needs 4 nodes: free now is 4-2=2 → can't start).
        assert_eq!(decisions, vec![Decision::start(JobId(2))]);
    }

    #[test]
    fn conservative_equals_easy_for_trivial_queue() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let queue = vec![JobBuilder::new(1).nodes(2).build()];
        let v = view(10, 10, &[], &d, &predict);
        let mut c = ConservativeBackfill;
        let mut e = EasyBackfill;
        assert_eq!(c.schedule(&v, &queue), e.schedule(&v, &queue));
    }
}
