//! First-come-first-served (no backfilling).
//!
//! The strict baseline: jobs start in queue order; the head job blocks
//! everything behind it until it fits. Every survey-cited evaluation of
//! backfilling (Mu'alem & Feitelson) measures against this.

use crate::view::{Decision, Policy, SchedView};
use epa_workload::job::Job;

/// Strict FCFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Policy for Fcfs {
    fn name(&self) -> &str {
        "fcfs"
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        let mut free = view.free_nodes;
        let mut out = Vec::new();
        for job in queue {
            if job.nodes <= free {
                free -= job.nodes;
                out.push(Decision::start(job.id));
            } else {
                break; // strict order: head blocks
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::RunningSummary;
    use epa_cluster::node::NodeSpec;
    use epa_power::dvfs::DvfsModel;
    use epa_simcore::time::SimTime;
    use epa_workload::job::{JobBuilder, JobId};

    fn view<'a>(
        free: u32,
        running: &'a [RunningSummary],
        dvfs: &'a DvfsModel,
        predict: &'a dyn Fn(&Job) -> f64,
    ) -> SchedView<'a> {
        SchedView {
            now: SimTime::ZERO,
            free_nodes: free,
            off_nodes: 0,
            total_nodes: 16,
            running,
            power_headroom_watts: f64::INFINITY,
            power_budget_watts: f64::INFINITY,
            system_watts: 0.0,
            temperature_c: 20.0,
            dvfs,
            predicted_watts_per_node: predict,
        }
    }

    #[test]
    fn head_blocks_tail() {
        let dvfs = DvfsModel::new(NodeSpec::typical_xeon());
        let predict = |_: &Job| 290.0;
        let queue = vec![
            JobBuilder::new(1).nodes(10).build(),
            JobBuilder::new(2).nodes(1).build(),
        ];
        let mut p = Fcfs;
        let v = view(4, &[], &dvfs, &predict);
        let d = p.schedule(&v, &queue);
        assert!(
            d.is_empty(),
            "head needs 10 > 4 free; FCFS must not skip it"
        );
    }

    #[test]
    fn starts_in_order_while_fitting() {
        let dvfs = DvfsModel::new(NodeSpec::typical_xeon());
        let predict = |_: &Job| 290.0;
        let queue = vec![
            JobBuilder::new(1).nodes(2).build(),
            JobBuilder::new(2).nodes(2).build(),
            JobBuilder::new(3).nodes(10).build(),
        ];
        let mut p = Fcfs;
        let v = view(5, &[], &dvfs, &predict);
        let d = p.schedule(&v, &queue);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], Decision::start(JobId(1)));
        assert_eq!(d[1], Decision::start(JobId(2)));
    }
}
