//! Energy-aware frequency selection (LRZ / Auweter et al.).
//!
//! Table I, LRZ production: "First time new app runs: characterized for
//! frequency, runtime and energy. Administrator selects job scheduling
//! goal, energy to solution or best performance." This policy reproduces
//! that LoadLeveler/LSF capability: per job, pick the DVFS frequency that
//! optimizes the administrator's goal, using the job's (tagged) phase
//! profile as its characterization.

use crate::policies::backfill::EasyBackfill;
use crate::view::{Decision, Policy, SchedView};
use epa_workload::job::Job;
use serde::{Deserialize, Serialize};

/// The administrator-selected objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulingGoal {
    /// Minimize energy-to-solution (runtime may inflate up to the bound).
    #[default]
    EnergyToSolution,
    /// Best performance: run at max frequency.
    Performance,
}

/// Energy-aware frequency selection on top of EASY backfilling.
#[derive(Debug, Clone, Copy)]
pub struct EnergyAwareScheduler {
    /// The site goal.
    pub goal: SchedulingGoal,
    /// Maximum tolerated runtime inflation under the energy goal
    /// (e.g. 1.15 = at most 15% slower than base frequency).
    pub max_slowdown: f64,
}

impl Default for EnergyAwareScheduler {
    fn default() -> Self {
        EnergyAwareScheduler {
            goal: SchedulingGoal::EnergyToSolution,
            max_slowdown: 1.15,
        }
    }
}

impl EnergyAwareScheduler {
    /// The frequency this scheduler would give a job under the view's
    /// DVFS model.
    #[must_use]
    pub fn pick_frequency(&self, view: &SchedView<'_>, job: &Job) -> f64 {
        let dvfs = view.dvfs;
        match self.goal {
            SchedulingGoal::Performance => dvfs.cpu().max_freq_ghz,
            SchedulingGoal::EnergyToSolution => {
                // Evaluate energy over the job's phase mix at every ladder
                // step within the slowdown bound; pick the minimum.
                let phases = job.normalized_phases();
                let mut best = (dvfs.cpu().base_freq_ghz, f64::INFINITY);
                for f in dvfs.cpu().frequency_ladder() {
                    let slow: f64 = phases
                        .iter()
                        .map(|p| p.weight * dvfs.slowdown(f, p.cpu_boundness))
                        .sum();
                    if slow > self.max_slowdown {
                        continue;
                    }
                    let energy: f64 = phases
                        .iter()
                        .map(|p| p.weight * dvfs.phase_energy(1.0, f, p.cpu_boundness))
                        .sum();
                    if energy < best.1 {
                        best = (f, energy);
                    }
                }
                best.0
            }
        }
    }
}

impl Policy for EnergyAwareScheduler {
    fn name(&self) -> &str {
        match self.goal {
            SchedulingGoal::EnergyToSolution => "energy-aware(energy)",
            SchedulingGoal::Performance => "energy-aware(performance)",
        }
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        let mut inner = EasyBackfill;
        inner
            .schedule(view, queue)
            .into_iter()
            .map(|d| {
                let Decision::Start { job: id, .. } = d;
                let f = queue
                    .iter()
                    .find(|j| j.id == id)
                    .map(|j| self.pick_frequency(view, j));
                Decision::Start {
                    job: id,
                    nodes_override: None,
                    freq_ghz: f,
                    node_cap_watts: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_cluster::node::NodeSpec;
    use epa_power::dvfs::DvfsModel;
    use epa_simcore::time::SimTime;
    use epa_workload::job::{AppProfile, JobBuilder};

    fn dvfs() -> DvfsModel {
        DvfsModel::new(NodeSpec::typical_xeon())
    }

    fn view<'a>(dvfs: &'a DvfsModel, predict: &'a dyn Fn(&Job) -> f64) -> SchedView<'a> {
        SchedView {
            now: SimTime::ZERO,
            free_nodes: 64,
            off_nodes: 0,
            total_nodes: 64,
            running: &[],
            power_headroom_watts: f64::INFINITY,
            power_budget_watts: f64::INFINITY,
            system_watts: 0.0,
            temperature_c: 20.0,
            dvfs,
            predicted_watts_per_node: predict,
        }
    }

    #[test]
    fn performance_goal_picks_max_frequency() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let v = view(&d, &predict);
        let s = EnergyAwareScheduler {
            goal: SchedulingGoal::Performance,
            max_slowdown: 1.15,
        };
        let job = JobBuilder::new(1).build();
        assert_eq!(s.pick_frequency(&v, &job), d.cpu().max_freq_ghz);
    }

    #[test]
    fn memory_bound_jobs_get_low_frequency() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let v = view(&d, &predict);
        let s = EnergyAwareScheduler::default();
        let job = JobBuilder::new(1)
            .app(AppProfile::memory_bound("stream"))
            .build();
        let f = s.pick_frequency(&v, &job);
        // Memory-bound: slowdown tiny, so the minimum in-bound frequency
        // minimizes energy.
        assert!(f < d.cpu().base_freq_ghz, "picked {f}");
    }

    #[test]
    fn compute_bound_jobs_stay_near_base() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let v = view(&d, &predict);
        let s = EnergyAwareScheduler {
            goal: SchedulingGoal::EnergyToSolution,
            max_slowdown: 1.10,
        };
        let job = JobBuilder::new(1)
            .app(AppProfile::compute_bound("hpl"))
            .build();
        let f = s.pick_frequency(&v, &job);
        let slow = d.slowdown(f, 0.95);
        assert!(slow <= 1.10 + 1e-9, "slowdown bound violated: {slow}");
    }

    #[test]
    fn slowdown_bound_respected_for_any_mix() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let v = view(&d, &predict);
        let s = EnergyAwareScheduler::default();
        for beta_app in [
            AppProfile::balanced("a"),
            AppProfile::compute_bound("b"),
            AppProfile::memory_bound("c"),
        ] {
            let job = JobBuilder::new(1).app(beta_app).build();
            let f = s.pick_frequency(&v, &job);
            let slow: f64 = job
                .normalized_phases()
                .iter()
                .map(|p| p.weight * d.slowdown(f, p.cpu_boundness))
                .sum();
            assert!(slow <= s.max_slowdown + 1e-9, "{slow} at {f}");
        }
    }

    #[test]
    fn schedule_annotates_frequency() {
        let d = dvfs();
        let predict = |_: &Job| 290.0;
        let v = view(&d, &predict);
        let mut s = EnergyAwareScheduler::default();
        let queue = vec![JobBuilder::new(1)
            .app(AppProfile::memory_bound("m"))
            .build()];
        let decisions = s.schedule(&v, &queue);
        assert_eq!(decisions.len(), 1);
        match &decisions[0] {
            Decision::Start {
                freq_ghz: Some(f), ..
            } => assert!(*f < d.cpu().base_freq_ghz),
            other => panic!("expected frequency annotation, got {other:?}"),
        }
    }
}
