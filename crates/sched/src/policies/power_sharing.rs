//! Dynamic power sharing (Ellsworth et al., SC'15).
//!
//! A fixed system budget is divided among running jobs; jobs that draw
//! less than their share donate the surplus to a pool, which is
//! redistributed to power-hungry jobs each enforcement period. The survey
//! cites this as the RAPL-based alternative to static uniform caps — the
//! E4 experiment reproduces the headline result that dynamic sharing
//! beats static partitioning on throughput.
//!
//! This module is the *allocation calculator*; it is driven either by the
//! engine (on power ticks) or standalone in experiments.

use epa_workload::job::JobId;
use serde::Serialize;
use std::collections::BTreeMap;

/// Per-job power demand and minimum floor.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct JobPowerNeed {
    /// Watts the job would draw unthrottled.
    pub demand_watts: f64,
    /// Watts below which the job cannot run (min-frequency draw).
    pub floor_watts: f64,
}

/// The dynamic power-sharing calculator.
#[derive(Debug, Clone)]
pub struct PowerSharingManager {
    budget_watts: f64,
}

impl PowerSharingManager {
    /// Creates a manager over a system budget.
    #[must_use]
    pub fn new(budget_watts: f64) -> Self {
        PowerSharingManager { budget_watts }
    }

    /// The budget.
    #[must_use]
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// Static uniform allocation: every job gets `budget / n`, clamped to
    /// its demand (the baseline Ellsworth improves on).
    #[must_use]
    pub fn allocate_static(&self, needs: &BTreeMap<JobId, JobPowerNeed>) -> BTreeMap<JobId, f64> {
        let n = needs.len().max(1) as f64;
        let share = self.budget_watts / n;
        needs
            .iter()
            .map(|(&id, need)| (id, share.min(need.demand_watts)))
            .collect()
    }

    /// Dynamic allocation: floors first, then water-fill the remaining
    /// budget toward demands. Jobs that need less than the uniform share
    /// free power for hungry jobs.
    ///
    /// Returns the per-job watts; the sum never exceeds the budget. When
    /// even the floors do not fit, floors are scaled proportionally (the
    /// caller decides whether to suspend jobs instead).
    #[must_use]
    pub fn allocate_dynamic(&self, needs: &BTreeMap<JobId, JobPowerNeed>) -> BTreeMap<JobId, f64> {
        if needs.is_empty() {
            return BTreeMap::new();
        }
        let floor_sum: f64 = needs.values().map(|n| n.floor_watts).sum();
        if floor_sum > self.budget_watts {
            let scale = self.budget_watts / floor_sum;
            return needs
                .iter()
                .map(|(&id, n)| (id, n.floor_watts * scale))
                .collect();
        }
        // Max-min water-fill above floors toward demands: repeatedly give
        // every still-hungry job an equal share, capping at its demand.
        // Terminates in ≤ n rounds (each round sates at least one job or
        // exhausts the budget).
        let mut alloc: BTreeMap<JobId, f64> =
            needs.iter().map(|(&id, n)| (id, n.floor_watts)).collect();
        let mut remaining = self.budget_watts - floor_sum;
        for _ in 0..=needs.len() {
            if remaining <= 1e-9 {
                break;
            }
            let hungry: Vec<JobId> = needs
                .iter()
                .filter(|(id, n)| n.demand_watts - alloc[id] > 1e-9)
                .map(|(&id, _)| id)
                .collect();
            if hungry.is_empty() {
                break;
            }
            let share = remaining / hungry.len() as f64;
            for id in hungry {
                let gap = needs[&id].demand_watts - alloc[&id];
                let give = share.min(gap);
                *alloc.get_mut(&id).expect("present") += give;
                remaining -= give;
            }
        }
        alloc
    }

    /// Throughput proxy: Σ granted/demand — the fraction of full-speed
    /// progress the job mix achieves under an allocation (1.0 per job =
    /// unthrottled). A job granted less than its floor cannot run at all
    /// (hardware has a minimum operating point) and contributes zero —
    /// this is what makes naive static partitioning lose: it hands
    /// unusable sub-floor slices to big jobs. Used by experiment E4.
    #[must_use]
    pub fn progress_score(
        needs: &BTreeMap<JobId, JobPowerNeed>,
        alloc: &BTreeMap<JobId, f64>,
    ) -> f64 {
        needs
            .iter()
            .map(|(id, n)| {
                let got = alloc.get(id).copied().unwrap_or(0.0);
                if got + 1e-9 < n.floor_watts {
                    0.0
                } else {
                    (got / n.demand_watts).min(1.0)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn needs(v: &[(u64, f64, f64)]) -> BTreeMap<JobId, JobPowerNeed> {
        v.iter()
            .map(|&(id, demand, floor)| {
                (
                    JobId(id),
                    JobPowerNeed {
                        demand_watts: demand,
                        floor_watts: floor,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn static_uniform_wastes_surplus() {
        let m = PowerSharingManager::new(900.0);
        // Job 1 needs only 100; static gives everyone 300 (capped at
        // demand), leaving job 2 and 3 throttled at 300 while 200 W idles.
        let n = needs(&[(1, 100.0, 50.0), (2, 500.0, 150.0), (3, 500.0, 150.0)]);
        let alloc = m.allocate_static(&n);
        assert_eq!(alloc[&JobId(1)], 100.0);
        assert_eq!(alloc[&JobId(2)], 300.0);
        assert_eq!(alloc[&JobId(3)], 300.0);
        let used: f64 = alloc.values().sum();
        assert!(used < 900.0 - 100.0, "static leaves surplus unused");
    }

    #[test]
    fn dynamic_redistributes_surplus() {
        let m = PowerSharingManager::new(900.0);
        let n = needs(&[(1, 100.0, 50.0), (2, 500.0, 150.0), (3, 500.0, 150.0)]);
        let alloc = m.allocate_dynamic(&n);
        assert!((alloc[&JobId(1)] - 100.0).abs() < 1e-6);
        assert!((alloc[&JobId(2)] - 400.0).abs() < 1e-6);
        assert!((alloc[&JobId(3)] - 400.0).abs() < 1e-6);
        let used: f64 = alloc.values().sum();
        assert!((used - 900.0).abs() < 1e-6);
    }

    #[test]
    fn dynamic_beats_static_on_progress() {
        let m = PowerSharingManager::new(900.0);
        let n = needs(&[(1, 100.0, 50.0), (2, 500.0, 150.0), (3, 500.0, 150.0)]);
        let ps = PowerSharingManager::progress_score(&n, &m.allocate_static(&n));
        let pd = PowerSharingManager::progress_score(&n, &m.allocate_dynamic(&n));
        assert!(pd > ps, "dynamic {pd} vs static {ps}");
    }

    #[test]
    fn budget_never_exceeded() {
        let m = PowerSharingManager::new(500.0);
        let n = needs(&[(1, 400.0, 100.0), (2, 400.0, 100.0), (3, 400.0, 100.0)]);
        for alloc in [m.allocate_static(&n), m.allocate_dynamic(&n)] {
            let used: f64 = alloc.values().sum();
            assert!(used <= 500.0 + 1e-6, "used {used}");
        }
    }

    #[test]
    fn floors_respected_when_feasible() {
        let m = PowerSharingManager::new(600.0);
        let n = needs(&[(1, 400.0, 200.0), (2, 400.0, 200.0)]);
        let alloc = m.allocate_dynamic(&n);
        assert!(alloc[&JobId(1)] >= 200.0);
        assert!(alloc[&JobId(2)] >= 200.0);
    }

    #[test]
    fn infeasible_floors_scaled() {
        let m = PowerSharingManager::new(300.0);
        let n = needs(&[(1, 400.0, 200.0), (2, 400.0, 200.0)]);
        let alloc = m.allocate_dynamic(&n);
        let used: f64 = alloc.values().sum();
        assert!((used - 300.0).abs() < 1e-6);
        assert!((alloc[&JobId(1)] - 150.0).abs() < 1e-6);
    }

    #[test]
    fn saturated_demands_stop_filling() {
        let m = PowerSharingManager::new(10_000.0);
        let n = needs(&[(1, 300.0, 100.0), (2, 300.0, 100.0)]);
        let alloc = m.allocate_dynamic(&n);
        assert!((alloc[&JobId(1)] - 300.0).abs() < 1e-6);
        assert!((alloc[&JobId(2)] - 300.0).abs() < 1e-6);
    }

    #[test]
    fn empty_needs() {
        let m = PowerSharingManager::new(100.0);
        assert!(m.allocate_dynamic(&BTreeMap::new()).is_empty());
        assert!(m.allocate_static(&BTreeMap::new()).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Dynamic allocation never exceeds the budget, never exceeds any
        /// job's demand (when floors fit), and never starves a job below a
        /// feasible floor.
        #[test]
        fn dynamic_allocation_sound(
            budget in 100.0f64..5000.0,
            jobs in proptest::collection::vec((50.0f64..600.0, 0.1f64..0.9), 1..20),
        ) {
            let needs: BTreeMap<JobId, JobPowerNeed> = jobs
                .iter()
                .enumerate()
                .map(|(i, &(demand, floor_frac))| {
                    (JobId(i as u64), JobPowerNeed {
                        demand_watts: demand,
                        floor_watts: demand * floor_frac,
                    })
                })
                .collect();
            let m = PowerSharingManager::new(budget);
            let alloc = m.allocate_dynamic(&needs);
            let used: f64 = alloc.values().sum();
            prop_assert!(used <= budget + 1e-6);
            let floor_sum: f64 = needs.values().map(|n| n.floor_watts).sum();
            if floor_sum <= budget {
                for (id, need) in &needs {
                    prop_assert!(alloc[id] >= need.floor_watts - 1e-6);
                    prop_assert!(alloc[id] <= need.demand_watts + 1e-6);
                }
            }
            // Dynamic never leaves budget unused while any job is hungry.
            let used: f64 = alloc.values().sum();
            let demand_sum: f64 = needs.values().map(|n| n.demand_watts).sum();
            prop_assert!(
                (used - budget.min(demand_sum)).abs() < 1e-4 * (1.0 + budget),
                "used {} vs min(budget {}, demand {})", used, budget, demand_sum
            );
        }
    }
}
