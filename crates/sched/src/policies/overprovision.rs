//! Over-provisioning with moldable jobs (Sarood et al., Patki et al.).
//!
//! The machine has more nodes than the power budget can feed at full
//! tilt. The scheduler picks, per moldable job, the node count whose
//! *power-constrained throughput* is best: more nodes at lower per-node
//! power (cap) versus fewer nodes uncapped. This policy implements the
//! greedy variant: for the head-of-queue jobs, choose the configuration
//! with the best predicted node-seconds-per-joule among those that fit
//! both free nodes and power headroom.

use crate::view::{Decision, Policy, SchedView};
use epa_workload::job::Job;

/// Moldable-configuration selection under a power budget.
#[derive(Debug, Clone, Copy)]
pub struct OverprovisionScheduler {
    /// Cap candidates per node, as fractions of the prediction (1.0 =
    /// uncapped, 0.8 = cap at 80% predicted power, …).
    pub cap_levels: [f64; 3],
}

impl Default for OverprovisionScheduler {
    fn default() -> Self {
        OverprovisionScheduler {
            cap_levels: [1.0, 0.85, 0.7],
        }
    }
}

impl Policy for OverprovisionScheduler {
    fn name(&self) -> &str {
        "overprovision-moldable"
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        let mut free = view.free_nodes;
        let mut headroom = view.power_headroom_watts;
        let mut out = Vec::new();
        for job in queue {
            let predicted = (view.predicted_watts_per_node)(job);
            let mut best: Option<(f64, Decision, u32, f64)> = None; // (score, d, nodes, watts)
            let candidates: Vec<u32> = match &job.moldable {
                Some(m) => m.candidate_nodes(),
                None => vec![job.nodes],
            };
            for n in candidates {
                if n > free || n == 0 {
                    continue;
                }
                let runtime = match &job.moldable {
                    Some(m) => m.runtime_on(n, job.nodes, job.base_runtime),
                    None => job.base_runtime,
                };
                for cap_frac in self.cap_levels {
                    // Throttling from the cap: approximate with the DVFS
                    // law — power scales ~f³ on the dynamic share, runtime
                    // inflates ~1/f on the cpu-bound share.
                    let watts = predicted * cap_frac;
                    let slowdown = if cap_frac >= 1.0 {
                        1.0
                    } else {
                        // Invert the cube law for the frequency ratio.
                        let fr = cap_frac.powf(1.0 / 3.0);
                        let beta = job.app.mean_cpu_boundness();
                        beta / fr + (1.0 - beta)
                    };
                    let total_watts = watts * f64::from(n);
                    if total_watts > headroom {
                        continue;
                    }
                    let eff_runtime = runtime.as_secs() * slowdown;
                    // Score: work per energy — node-seconds of *useful*
                    // (reference-point) work per joule spent.
                    let useful = job.node_seconds();
                    let energy = total_watts * eff_runtime;
                    if energy <= 0.0 {
                        continue;
                    }
                    let score = useful / energy;
                    let d = Decision::Start {
                        job: job.id,
                        nodes_override: job.moldable.as_ref().map(|_| n),
                        freq_ghz: None,
                        node_cap_watts: if cap_frac < 1.0 { Some(watts) } else { None },
                    };
                    if best.as_ref().is_none_or(|(s, ..)| score > *s) {
                        best = Some((score, d, n, total_watts));
                    }
                }
            }
            if let Some((_, d, n, w)) = best {
                free -= n;
                headroom -= w;
                out.push(d);
            }
            // Unlike FCFS we continue down the queue (power-constrained
            // scheduling is about packing the budget).
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_cluster::node::NodeSpec;
    use epa_power::dvfs::DvfsModel;
    use epa_simcore::time::{SimDuration, SimTime};
    use epa_workload::job::JobBuilder;
    use epa_workload::moldable::MoldableConfig;

    fn dvfs() -> DvfsModel {
        DvfsModel::new(NodeSpec::typical_xeon())
    }

    fn view<'a>(
        free: u32,
        headroom: f64,
        dvfs: &'a DvfsModel,
        predict: &'a dyn Fn(&Job) -> f64,
    ) -> SchedView<'a> {
        SchedView {
            now: SimTime::ZERO,
            free_nodes: free,
            off_nodes: 0,
            total_nodes: 128,
            running: &[],
            power_headroom_watts: headroom,
            power_budget_watts: headroom,
            system_watts: 0.0,
            temperature_c: 20.0,
            dvfs,
            predicted_watts_per_node: predict,
        }
    }

    #[test]
    fn rigid_job_within_budget_starts_plain() {
        let d = dvfs();
        let predict = |_: &Job| 200.0;
        let queue = vec![JobBuilder::new(1).nodes(4).build()];
        let mut p = OverprovisionScheduler::default();
        let v = view(16, 10_000.0, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions.len(), 1);
    }

    #[test]
    fn moldable_job_shrinks_under_tight_budget() {
        let d = dvfs();
        let predict = |_: &Job| 200.0;
        let queue = vec![JobBuilder::new(1)
            .nodes(16)
            .runtime(SimDuration::from_hours(1.0))
            .estimate(SimDuration::from_hours(24.0))
            .moldable(MoldableConfig::new(2, 32, 0.05))
            .build()];
        let mut p = OverprovisionScheduler::default();
        // Budget fits only ~4 nodes at 200 W.
        let v = view(32, 850.0, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions.len(), 1, "job should shrink to fit");
        match &decisions[0] {
            Decision::Start {
                nodes_override: Some(n),
                ..
            } => assert!(*n <= 4, "nodes {n}"),
            other => panic!("expected moldable override, got {other:?}"),
        }
    }

    #[test]
    fn nothing_fits_nothing_starts() {
        let d = dvfs();
        let predict = |_: &Job| 200.0;
        let queue = vec![JobBuilder::new(1).nodes(4).build()];
        let mut p = OverprovisionScheduler::default();
        let v = view(16, 100.0, &d, &predict);
        assert!(p.schedule(&v, &queue).is_empty());
    }

    #[test]
    fn packs_multiple_jobs_into_budget() {
        let d = dvfs();
        let predict = |_: &Job| 200.0;
        let queue = vec![
            JobBuilder::new(1).nodes(2).build(),
            JobBuilder::new(2).nodes(2).build(),
            JobBuilder::new(3).nodes(2).build(),
        ];
        let mut p = OverprovisionScheduler::default();
        // Headroom for about two uncapped 2-node jobs (or three capped).
        let v = view(16, 900.0, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert!(decisions.len() >= 2, "packed {decisions:?}");
    }

    #[test]
    fn caps_annotated_when_capped_configuration_wins() {
        let d = dvfs();
        let predict = |_: &Job| 300.0;
        // Memory-bound job: capping barely slows it, so capped configs have
        // strictly better work-per-joule.
        let queue = vec![JobBuilder::new(1)
            .nodes(4)
            .app(epa_workload::job::AppProfile::memory_bound("stream"))
            .build()];
        let mut p = OverprovisionScheduler::default();
        let v = view(16, 10_000.0, &d, &predict);
        let decisions = p.schedule(&v, &queue);
        assert_eq!(decisions.len(), 1);
        match &decisions[0] {
            Decision::Start {
                node_cap_watts: Some(c),
                ..
            } => {
                assert!(*c < 300.0, "cap {c}");
            }
            other => panic!("expected capped start, got {other:?}"),
        }
    }
}
