//! Name → policy constructor registry.
//!
//! Every experiment bin, the site runner, and the learned-policy
//! environment need to turn a policy *name* into a live [`Policy`]. The
//! `match` arms for that used to be copy-pasted per binary and drifted
//! (one bin's `"easy"` was another's `"easy-backfill"`). This registry is
//! the single mapping: the canonical name is exactly what the policy's
//! own [`Policy::name`] reports, so a constructed policy round-trips
//! through outcome JSON and back by name.

use crate::error::SchedError;
use crate::policies::energy_aware::SchedulingGoal;
use crate::policies::{
    ConservativeBackfill, EasyBackfill, EnergyAwareScheduler, Fcfs, OverprovisionScheduler,
    PowerAwareBackfill,
};
use crate::view::Policy;

/// Every canonical policy name [`make_policy`] accepts, in display order.
/// The list is what an [`SchedError::UnknownPolicy`] error reports.
pub const POLICY_NAMES: &[&str] = &[
    "fcfs",
    "easy-backfill",
    "conservative-backfill",
    "power-aware-backfill",
    "power-aware-backfill+dvfs",
    "energy-aware(energy)",
    "energy-aware(performance)",
    "overprovision-moldable",
];

/// Constructs a policy by canonical name (each policy's own
/// [`Policy::name`]). Unknown names get a typed error listing every
/// valid name rather than a panic or a silent default.
pub fn make_policy(name: &str) -> Result<Box<dyn Policy>, SchedError> {
    let policy: Box<dyn Policy> = match name {
        "fcfs" => Box::new(Fcfs),
        "easy-backfill" => Box::new(EasyBackfill),
        "conservative-backfill" => Box::new(ConservativeBackfill),
        "power-aware-backfill" => Box::new(PowerAwareBackfill {
            dvfs_fitting: false,
            margin_watts: 0.0,
        }),
        "power-aware-backfill+dvfs" => Box::new(PowerAwareBackfill {
            dvfs_fitting: true,
            margin_watts: 0.0,
        }),
        "energy-aware(energy)" => Box::new(EnergyAwareScheduler {
            goal: SchedulingGoal::EnergyToSolution,
            max_slowdown: 1.15,
        }),
        "energy-aware(performance)" => Box::new(EnergyAwareScheduler {
            goal: SchedulingGoal::Performance,
            max_slowdown: 1.15,
        }),
        "overprovision-moldable" => Box::new(OverprovisionScheduler::default()),
        _ => {
            return Err(SchedError::UnknownPolicy {
                name: name.to_owned(),
                valid: POLICY_NAMES.join(", "),
            })
        }
    };
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_round_trips() {
        for name in POLICY_NAMES {
            let p = make_policy(name).expect("registered name constructs");
            assert_eq!(p.name(), *name, "registry name must match Policy::name");
        }
    }

    #[test]
    fn unknown_name_lists_valid_policies() {
        let Err(err) = make_policy("slurm") else {
            panic!("unknown policy must not construct");
        };
        let msg = err.to_string();
        assert!(msg.contains("slurm"), "{msg}");
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }
}
