//! SPARS-style policy environment: the engine as a decision process.
//!
//! The survey's forward-looking sections (Q8, "machine learning for
//! scheduling") expect sites to train controllers against their own
//! systems. [`PolicyEnv`] packages the cluster engine as exactly that: a
//! `reset / observe / step(actions) → (observation, reward)` loop at a
//! fixed decision interval, where the actions are the same
//! [`ControlAction`]s the engineered adapters emit — a learned controller
//! and a production mechanism go through one validated apply path.
//!
//! Determinism contract: the environment inherits the engine's guarantee
//! — same seed, same action sequence ⇒ byte-identical observations,
//! rewards, outcomes, and traces at any shard × thread count. Training
//! loops are therefore exactly reproducible, and a mid-episode
//! environment can be frozen with [`PolicyEnv::snapshot`] and revived
//! with [`PolicyEnv::restore`] without perturbing a single byte of the
//! remaining episode.

use crate::control::{ControlAction, Observation};
use crate::engine::{ClusterSim, EngineConfig, RewardProbe, SimOutcome};
use crate::error::SchedError;
use crate::policies::registry::make_policy;
use crate::snapshot::Snapshot;
use epa_cluster::system::System;
use epa_simcore::snap::{SnapReader, SnapWriter, SnapshotError};
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::Job;
use serde::Serialize;

/// Schema version of the environment snapshot frame (env bookkeeping +
/// embedded engine snapshot). Bump on layout change.
pub const ENV_SNAPSHOT_VERSION: u32 = 1;

/// Reward blend weights. The reward for one decision interval is
///
/// ```text
/// r = w_completed_job · Δcompleted
///   − ( w_energy_kwh · ΔkWh
///     + w_slowdown · Δ(bounded-slowdown mass)
///     + w_violation_hours · Δ(budget-violation hours) )
/// ```
///
/// so a controller maximizing return trades throughput against energy,
/// queueing damage, and budget violation — the survey's Q7 effectiveness
/// axes. Zero a weight to ablate that term.
///
/// The completion bonus is load-bearing: without it, the cost-only blend
/// makes "park the machine" (power everything down, stretch every job
/// past the horizon so nothing completes and no slowdown accrues) the
/// optimal policy, and tabular learners find that exploit reliably.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RewardConfig {
    /// Bonus per job completed in the interval.
    pub w_completed_job: f64,
    /// Weight on energy, per kWh consumed in the interval.
    pub w_energy_kwh: f64,
    /// Weight on the bounded-slowdown mass (sum over jobs completed in
    /// the interval of their bounded slowdown).
    pub w_slowdown: f64,
    /// Weight on power-budget violation time, per hour over the limit.
    pub w_violation_hours: f64,
}

impl Default for RewardConfig {
    /// A blend where one kWh, one unit of slowdown mass, and ~72 seconds
    /// of budget violation weigh the same — violation is priced steeply
    /// because production sites treat it as near-inviolable (Trinity's
    /// contractual 8.5 MW, RIKEN's emergency kills). The completion bonus
    /// is sized so a typical mid-size job (tens of kWh, modest slowdown)
    /// is clearly worth finishing.
    fn default() -> Self {
        RewardConfig {
            w_completed_job: 50.0,
            w_energy_kwh: 1.0,
            w_slowdown: 1.0,
            w_violation_hours: 50.0,
        }
    }
}

impl RewardConfig {
    /// The reward accrued between two engine probes.
    #[must_use]
    pub fn reward_between(&self, before: &RewardProbe, after: &RewardProbe) -> f64 {
        let d_done = (after.completed - before.completed) as f64;
        let d_kwh = (after.energy_joules - before.energy_joules) / 3.6e6;
        let d_slow = after.slowdown_sum - before.slowdown_sum;
        let d_viol_h = (after.violation_secs - before.violation_secs) / 3600.0;
        self.w_completed_job * d_done
            - (self.w_energy_kwh * d_kwh
                + self.w_slowdown * d_slow
                + self.w_violation_hours * d_viol_h)
    }

    /// The whole-episode reward of a finished run, computed from the
    /// outcome alone (`slowdown mass = mean bounded slowdown × completed`).
    /// Equals the sum of per-interval rewards over a full episode.
    #[must_use]
    pub fn reward_of_outcome(&self, o: &SimOutcome) -> f64 {
        let kwh = o.energy_joules / 3.6e6;
        let slow = o.mean_bounded_slowdown * o.completed as f64;
        let viol_h = o.budget_violation_secs / 3600.0;
        self.w_completed_job * o.completed as f64
            - (self.w_energy_kwh * kwh + self.w_slowdown * slow + self.w_violation_hours * viol_h)
    }
}

/// Environment configuration: the decision cadence and the reward blend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnvConfig {
    /// Fixed interval between decision points. Each [`PolicyEnv::step`]
    /// advances the simulation by exactly this much (or to the end of the
    /// episode, whichever comes first).
    pub decision_interval: SimDuration,
    /// Reward blend.
    pub reward: RewardConfig,
}

impl EnvConfig {
    /// An hourly decision cadence with the default reward blend.
    #[must_use]
    pub fn hourly() -> Self {
        EnvConfig {
            decision_interval: SimDuration::from_hours(1.0),
            reward: RewardConfig::default(),
        }
    }
}

/// What one [`PolicyEnv::step`] returns.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepResult {
    /// The observation at the new decision point.
    pub observation: Observation,
    /// Reward accrued over the interval just simulated.
    pub reward: f64,
    /// How many of the submitted actions the engine accepted.
    pub actions_applied: u32,
    /// True when the episode is over (simulation ran to its horizon);
    /// further steps are no-ops with zero reward.
    pub done: bool,
}

/// The engine wrapped as a fixed-interval decision process.
///
/// The environment *owns* its episode ingredients (system, jobs, policy
/// name, engine config), so [`PolicyEnv::reset`] can rebuild a fresh,
/// byte-identical engine for every episode — the RNG substreams are
/// re-derived from the engine config's seed, never shared across
/// episodes.
pub struct PolicyEnv {
    system: System,
    jobs: Vec<Job>,
    policy_name: String,
    engine_config: EngineConfig,
    env_config: EnvConfig,
    sim: Option<ClusterSim<'static>>,
    step_idx: u64,
    done: bool,
    last_probe: Option<RewardProbe>,
    episode_return: f64,
}

impl PolicyEnv {
    /// Creates an environment. The policy name is resolved against the
    /// registry eagerly so an unknown name fails here, not mid-training.
    pub fn new(
        system: System,
        jobs: Vec<Job>,
        policy_name: &str,
        engine_config: EngineConfig,
        env_config: EnvConfig,
    ) -> Result<Self, SchedError> {
        // Validate the name now; the boxed policy itself is rebuilt per
        // episode (policies may be stateful across a run).
        drop(make_policy(policy_name)?);
        Ok(PolicyEnv {
            system,
            jobs,
            policy_name: policy_name.to_owned(),
            engine_config,
            env_config,
            sim: None,
            step_idx: 0,
            done: false,
            last_probe: None,
            episode_return: 0.0,
        })
    }

    /// The environment configuration.
    #[must_use]
    pub fn config(&self) -> &EnvConfig {
        &self.env_config
    }

    /// Starts a fresh episode and returns the initial observation (t = 0,
    /// nothing simulated yet).
    ///
    /// # Panics
    /// Panics only if the engine rejects a configuration that
    /// [`PolicyEnv::new`] accepted, which would be a bug.
    pub fn reset(&mut self) -> Observation {
        let policy = make_policy(&self.policy_name).expect("name validated in new()");
        let sim = ClusterSim::try_new_owned(
            self.system.clone(),
            self.jobs.clone(),
            policy,
            self.engine_config.clone(),
        )
        .expect("engine config validated at env construction");
        self.step_idx = 0;
        self.done = false;
        self.episode_return = 0.0;
        self.last_probe = Some(sim.reward_probe());
        let obs = sim.control_observation();
        self.sim = Some(sim);
        obs
    }

    /// The current observation without advancing time.
    ///
    /// # Panics
    /// Panics if called before [`PolicyEnv::reset`].
    #[must_use]
    pub fn observe(&self) -> Observation {
        self.sim
            .as_ref()
            .expect("reset() before observe()")
            .control_observation()
    }

    /// Applies the controller's actions at the current decision point,
    /// advances one decision interval, and returns the new observation
    /// and the interval's reward.
    ///
    /// # Panics
    /// Panics if called before [`PolicyEnv::reset`].
    pub fn step(&mut self, actions: &[ControlAction]) -> StepResult {
        let sim = self.sim.as_mut().expect("reset() before step()");
        if self.done {
            return StepResult {
                observation: sim.control_observation(),
                reward: 0.0,
                actions_applied: 0,
                done: true,
            };
        }
        let actions_applied = sim.apply_external_actions(actions);
        self.step_idx += 1;
        // The barrier is derived from the step index, not accumulated, so
        // a restored environment lands on exactly the same instants.
        let until =
            SimTime::from_secs(self.env_config.decision_interval.as_secs() * self.step_idx as f64);
        let ran_out = sim.advance_until(until);
        let probe = sim.reward_probe();
        let before = self.last_probe.expect("probe recorded at reset");
        let reward = self.env_config.reward.reward_between(&before, &probe);
        self.last_probe = Some(probe);
        self.episode_return += reward;
        self.done = ran_out;
        StepResult {
            observation: sim.control_observation(),
            reward,
            actions_applied,
            done: self.done,
        }
    }

    /// Total reward accrued this episode so far.
    #[must_use]
    pub fn episode_return(&self) -> f64 {
        self.episode_return
    }

    /// Ends the episode: runs the engine to completion (if steps didn't
    /// already reach the horizon) and returns the final outcome. The
    /// environment needs a [`PolicyEnv::reset`] before its next step.
    ///
    /// # Panics
    /// Panics if called before [`PolicyEnv::reset`].
    pub fn finish(&mut self) -> SimOutcome {
        let sim = self.sim.take().expect("reset() before finish()");
        self.done = true;
        sim.run()
    }

    /// Freezes the mid-episode state: env bookkeeping plus the engine's
    /// own framed snapshot, in one checksummed frame.
    ///
    /// # Panics
    /// Panics if called before [`PolicyEnv::reset`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let sim = self.sim.as_ref().expect("reset() before snapshot()");
        let probe = self.last_probe.expect("probe recorded at reset");
        let mut w = SnapWriter::new();
        w.section("env");
        w.u64(self.step_idx);
        w.bool(self.done);
        w.f64(self.episode_return);
        w.f64(probe.t.as_secs());
        w.f64(probe.energy_joules);
        w.u64(probe.completed);
        w.f64(probe.slowdown_sum);
        w.f64(probe.violation_secs);
        w.u64(probe.emergency_kills);
        w.section("engine");
        let engine = sim.snapshot();
        w.seq(engine.as_bytes(), |w, &b| w.u8(b));
        w.finish(ENV_SNAPSHOT_VERSION)
    }

    /// Revives a mid-episode environment frozen by [`PolicyEnv::snapshot`].
    /// The env must have been constructed with the same system, jobs,
    /// policy name, and configs (the engine's config fingerprint rejects a
    /// mismatch).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapReader::open(bytes, ENV_SNAPSHOT_VERSION)?;
        r.section("env")?;
        let step_idx = r.u64()?;
        let done = r.bool()?;
        let episode_return = r.f64()?;
        let probe = RewardProbe {
            t: SimTime::from_secs(r.f64()?),
            energy_joules: r.f64()?,
            completed: r.u64()?,
            slowdown_sum: r.f64()?,
            violation_secs: r.f64()?,
            emergency_kills: r.u64()?,
        };
        r.section("engine")?;
        let engine_bytes = r.seq(SnapReader::u8)?;
        r.finish()?;
        let policy = make_policy(&self.policy_name).map_err(|e| SnapshotError::ConfigMismatch {
            detail: format!("policy resolution failed: {e}"),
        })?;
        let sim = ClusterSim::resume_owned(
            self.system.clone(),
            self.jobs.clone(),
            policy,
            self.engine_config.clone(),
            &Snapshot::from_bytes(engine_bytes),
        )?;
        self.sim = Some(sim);
        self.step_idx = step_idx;
        self.done = done;
        self.episode_return = episode_return;
        self.last_probe = Some(probe);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ControlAction;
    use epa_cluster::node::NodeSpec;
    use epa_cluster::system::SystemSpec;
    use epa_cluster::topology::Topology;
    use epa_workload::generator::{WorkloadGenerator, WorkloadParams};

    fn small_env() -> PolicyEnv {
        let spec = SystemSpec {
            name: "env-test".into(),
            cabinets: 2,
            nodes_per_cabinet: 8,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 8 },
            peak_tflops: 1.0,
        };
        let horizon = SimTime::from_hours(12.0);
        let jobs = WorkloadGenerator::new(WorkloadParams::typical(16, 7)).generate(horizon, 0);
        let config = EngineConfig::new(horizon);
        PolicyEnv::new(
            spec.build(),
            jobs,
            "easy-backfill",
            config,
            EnvConfig::hourly(),
        )
        .unwrap()
    }

    #[test]
    fn unknown_policy_rejected_at_construction() {
        let spec = SystemSpec {
            name: "x".into(),
            cabinets: 1,
            nodes_per_cabinet: 4,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 4 },
            peak_tflops: 1.0,
        };
        let Err(err) = PolicyEnv::new(
            spec.build(),
            vec![],
            "no-such-policy",
            EngineConfig::new(SimTime::from_hours(1.0)),
            EnvConfig::hourly(),
        ) else {
            panic!("unknown policy must not construct an env");
        };
        assert!(matches!(err, SchedError::UnknownPolicy { .. }));
    }

    #[test]
    fn episode_runs_to_done_and_matches_outcome_reward() {
        let mut env = small_env();
        let obs0 = env.reset();
        assert_eq!(obs0.t, SimTime::ZERO);
        let mut steps = 0;
        let mut total = 0.0;
        loop {
            let r = env.step(&[]);
            total += r.reward;
            steps += 1;
            if r.done {
                break;
            }
            assert!(steps < 1000, "episode must terminate");
        }
        let outcome = env.finish();
        let expected = env.config().reward.reward_of_outcome(&outcome);
        assert!(
            (total - expected).abs() < 1e-6,
            "sum of step rewards {total} != outcome reward {expected}"
        );
    }

    #[test]
    fn reset_is_reproducible() {
        let mut env = small_env();
        env.reset();
        let a1 = env.step(&[]);
        let b1 = env.step(&[]);
        env.reset();
        let a2 = env.step(&[]);
        let b2 = env.step(&[]);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn external_actions_steer_the_engine() {
        let mut env = small_env();
        env.reset();
        let r = env.step(&[ControlAction::SetDefaultFrequency {
            freq_ghz: Some(1.2),
        }]);
        assert_eq!(r.actions_applied, 1);
        // An invalid action is rejected, not applied.
        let r = env.step(&[ControlAction::SetJobLimit { limit: Some(0) }]);
        assert_eq!(r.actions_applied, 0);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        // Straight-through episode.
        let mut env = small_env();
        env.reset();
        let mut straight = Vec::new();
        for _ in 0..3 {
            straight.push(env.step(&[ControlAction::SetDefaultFrequency {
                freq_ghz: Some(1.8),
            }]));
        }
        let o_straight = env.finish();

        // Same episode interrupted after step 1 and revived.
        let mut env = small_env();
        env.reset();
        let first = env.step(&[ControlAction::SetDefaultFrequency {
            freq_ghz: Some(1.8),
        }]);
        assert_eq!(first, straight[0]);
        let frozen = env.snapshot();
        let mut env2 = small_env();
        env2.restore(&frozen).unwrap();
        let mut resumed = vec![first];
        for _ in 0..2 {
            resumed.push(env2.step(&[ControlAction::SetDefaultFrequency {
                freq_ghz: Some(1.8),
            }]));
        }
        let o_resumed = env2.finish();
        assert_eq!(straight, resumed);
        assert_eq!(
            serde_json::to_string(&o_straight).unwrap(),
            serde_json::to_string(&o_resumed).unwrap()
        );
    }
}
