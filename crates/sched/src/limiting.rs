//! Concurrency limiting — CINECA's MS3, "do less when it's too hot".
//!
//! Borghesi et al. (cited by the survey, and a survey co-author) limit
//! the number of jobs running concurrently instead of throttling
//! frequencies: above a temperature threshold the scheduler admits fewer
//! jobs, trading throughput for thermal/power safety without touching the
//! processing elements' performance.

use serde::{Deserialize, Serialize};

/// A temperature-conditioned concurrency gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLimitGate {
    /// Maximum concurrent jobs under normal conditions.
    pub normal_limit: usize,
    /// Maximum concurrent jobs when the facility is hot.
    pub hot_limit: usize,
    /// Outdoor temperature (°C) above which the hot limit applies.
    pub hot_threshold_c: f64,
}

impl JobLimitGate {
    /// The limit in force at `temperature_c`.
    #[must_use]
    pub fn limit_at(&self, temperature_c: f64) -> usize {
        if temperature_c > self.hot_threshold_c {
            self.hot_limit
        } else {
            self.normal_limit
        }
    }

    /// True when another job may start given the current running count.
    #[must_use]
    pub fn admits(&self, running: usize, temperature_c: f64) -> bool {
        running < self.limit_at(temperature_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> JobLimitGate {
        JobLimitGate {
            normal_limit: 10,
            hot_limit: 4,
            hot_threshold_c: 28.0,
        }
    }

    #[test]
    fn normal_conditions_use_normal_limit() {
        let g = gate();
        assert!(g.admits(9, 20.0));
        assert!(!g.admits(10, 20.0));
    }

    #[test]
    fn hot_conditions_tighten() {
        let g = gate();
        assert_eq!(g.limit_at(30.0), 4);
        assert!(g.admits(3, 30.0));
        assert!(!g.admits(4, 30.0));
        // Exactly at threshold: still normal.
        assert_eq!(g.limit_at(28.0), 10);
    }
}
