//! Idle-node shutdown policy.
//!
//! Table I, Tokyo Tech production: "Resource manager dynamically boots or
//! shuts down nodes to stay under power cap (summer only) … shuts down
//! nodes that have been idle for a long time." The same mechanism is
//! Mämmelä et al.'s energy-aware scheduler from the related work.
//!
//! The engine consults this policy on every power tick: idle nodes past
//! the threshold are drained and powered off (minus a responsiveness
//! reserve); the engine boots nodes back on demand.

use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Idle-node shutdown configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShutdownPolicy {
    /// How long a node must sit idle before shutdown.
    pub idle_threshold: SimDuration,
    /// Time from shutdown initiation to the node drawing off-power.
    pub shutdown_time: SimDuration,
    /// Time from boot initiation to the node being allocatable.
    pub boot_time: SimDuration,
    /// Idle nodes always kept on for responsiveness.
    pub min_idle_reserve: u32,
    /// Restrict activity to a season: `(start_day_of_year, end_day_of_year)`
    /// half-open, wrapping allowed. `None` = always active. Tokyo Tech
    /// enforces only in summer.
    pub season: Option<(u32, u32)>,
}

impl Default for ShutdownPolicy {
    fn default() -> Self {
        ShutdownPolicy {
            idle_threshold: SimDuration::from_mins(15.0),
            shutdown_time: SimDuration::from_mins(2.0),
            boot_time: SimDuration::from_mins(5.0),
            min_idle_reserve: 2,
            season: None,
        }
    }
}

impl ShutdownPolicy {
    /// True when the policy is active at simulation time `t`, assuming the
    /// simulation starts at day-of-year 0. Sites whose calendar starts
    /// elsewhere (the engine aligns with the facility's weather model)
    /// should use [`Self::season_active_on`].
    #[must_use]
    pub fn season_active(&self, t: SimTime) -> bool {
        self.season_active_on(t, 0)
    }

    /// True when the policy is active at simulation time `t` for a
    /// simulation whose t = 0 falls on `start_day_of_year`.
    #[must_use]
    pub fn season_active_on(&self, t: SimTime, start_day_of_year: u32) -> bool {
        match self.season {
            None => true,
            Some((start, end)) => {
                let doy = ((u64::from(start_day_of_year) + t.day_index()) % 365) as u32;
                if start <= end {
                    doy >= start && doy < end
                } else {
                    // Wrapping season (e.g. Nov–Feb).
                    doy >= start || doy < end
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_season_always_active() {
        let p = ShutdownPolicy::default();
        assert!(p.season_active(SimTime::ZERO));
        assert!(p.season_active(SimTime::from_days(400.0)));
    }

    #[test]
    fn summer_season() {
        let p = ShutdownPolicy {
            season: Some((152, 244)), // Jun–Aug
            ..Default::default()
        };
        assert!(!p.season_active(SimTime::from_days(10.0)));
        assert!(p.season_active(SimTime::from_days(180.0)));
        assert!(!p.season_active(SimTime::from_days(300.0)));
        // Wraps into the next year.
        assert!(p.season_active(SimTime::from_days(365.0 + 180.0)));
    }

    #[test]
    fn wrapping_season() {
        let p = ShutdownPolicy {
            season: Some((330, 60)), // Nov–Feb
            ..Default::default()
        };
        assert!(p.season_active(SimTime::from_days(340.0)));
        assert!(p.season_active(SimTime::from_days(10.0)));
        assert!(!p.season_active(SimTime::from_days(180.0)));
    }
}
