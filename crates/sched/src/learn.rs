//! Dependency-free offline learners over the [`crate::env::PolicyEnv`].
//!
//! The survey's Q8 asks what sites *want* from future JSRM; "let the
//! system tune its own knobs" is the recurring answer. These two learners
//! are deliberately small — a tile-coded tabular Q-learner and an
//! epsilon-greedy contextual bandit — because the point is the *plumbing*:
//! both drive the engine exclusively through the validated
//! [`ControlAction`] apply path, and both train byte-reproducibly from a
//! seed (all randomness flows through [`SimRng`] substreams).
//!
//! The action space is a small catalog of macro-actions
//! ([`ActionCatalog::standard`]): idle-shutdown aggressiveness presets and
//! DVFS default-frequency presets. Budget resizing is deliberately *not*
//! in the catalog — a learner that can raise its own power cap optimizes
//! away the violation penalty instead of the behaviour.

use crate::control::{ControlAction, Observation};
use crate::shutdown::ShutdownPolicy;
use epa_simcore::rng::SimRng;
use epa_simcore::time::SimDuration;
use serde::Serialize;

/// One dimension of the tile coder: a bounded range split into bins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TileDim {
    /// Lower bound (values below clamp here).
    pub lo: f64,
    /// Upper bound (values above clamp here).
    pub hi: f64,
    /// Number of bins across `[lo, hi]`.
    pub bins: usize,
}

/// A classic tile coder: `tilings` overlapping uniform grids, each offset
/// by a fraction of a bin width, turning a continuous observation vector
/// into a sparse set of active feature indices. Coarse coding gives the
/// tabular learner generalization without any numerical optimization.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TileCoding {
    /// Per-input-dimension ranges and resolutions.
    pub dims: Vec<TileDim>,
    /// Number of overlapping offset grids.
    pub tilings: usize,
}

impl TileCoding {
    /// Total number of features (one weight per feature per action).
    #[must_use]
    pub fn n_features(&self) -> usize {
        let per_tiling: usize = self.dims.iter().map(|d| d.bins).product();
        per_tiling * self.tilings
    }

    /// The active feature index in each tiling for input `x`
    /// (`x.len() == dims.len()`; values are clamped to their ranges).
    ///
    /// # Panics
    /// Panics if `x` has the wrong dimensionality.
    #[must_use]
    pub fn active(&self, x: &[f64]) -> Vec<usize> {
        assert_eq!(x.len(), self.dims.len(), "input dimensionality mismatch");
        let per_tiling: usize = self.dims.iter().map(|d| d.bins).product();
        (0..self.tilings)
            .map(|t| {
                // Each tiling shifts the grid by t/tilings of a bin.
                let frac = t as f64 / self.tilings as f64;
                let mut idx = 0usize;
                for (v, d) in x.iter().zip(&self.dims) {
                    let w = (d.hi - d.lo) / d.bins as f64;
                    let shifted = (v - d.lo) / w + frac;
                    let bin = (shifted.floor() as i64).clamp(0, d.bins as i64 - 1) as usize;
                    idx = idx * d.bins + bin;
                }
                t * per_tiling + idx
            })
            .collect()
    }
}

/// Q-learning hyperparameters, stamped into `BENCH_policy_env.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QConfig {
    /// Learning rate (per active tile; the effective rate is `alpha`
    /// because updates are averaged over tilings).
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Exploration rate at episode 0.
    pub epsilon0: f64,
    /// Multiplicative epsilon decay per episode.
    pub epsilon_decay: f64,
    /// Training episodes.
    pub episodes: u32,
    /// RNG seed for exploration (isolated substream).
    pub seed: u64,
}

impl Default for QConfig {
    fn default() -> Self {
        QConfig {
            alpha: 0.15,
            gamma: 0.95,
            epsilon0: 0.4,
            epsilon_decay: 0.85,
            episodes: 8,
            seed: 1,
        }
    }
}

/// Tabular Q-learning over tile-coded observations.
pub struct QLearner {
    coder: TileCoding,
    config: QConfig,
    /// `weights[action][feature]`; Q(s,a) = mean over active tiles.
    weights: Vec<Vec<f64>>,
    rng: SimRng,
    epsilon: f64,
}

impl QLearner {
    /// Creates a learner for `n_actions` actions.
    #[must_use]
    pub fn new(coder: TileCoding, n_actions: usize, config: QConfig) -> Self {
        let n = coder.n_features();
        QLearner {
            coder,
            config,
            weights: vec![vec![0.0; n]; n_actions],
            rng: SimRng::new(config.seed).stream("qlearn/epsilon"),
            epsilon: config.epsilon0,
        }
    }

    /// The hyperparameters.
    #[must_use]
    pub fn config(&self) -> &QConfig {
        &self.config
    }

    /// Q(s, a) for tile-coded state `x`.
    #[must_use]
    pub fn q(&self, x: &[f64], action: usize) -> f64 {
        let active = self.coder.active(x);
        let sum: f64 = active.iter().map(|&i| self.weights[action][i]).sum();
        sum / self.coder.tilings as f64
    }

    /// Greedy action: highest Q, lowest index wins ties (determinism).
    #[must_use]
    pub fn greedy(&self, x: &[f64]) -> usize {
        let mut best = 0;
        let mut best_q = f64::NEG_INFINITY;
        for a in 0..self.weights.len() {
            let q = self.q(x, a);
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }

    /// Epsilon-greedy action for training.
    pub fn act(&mut self, x: &[f64]) -> usize {
        if self.rng.bernoulli(self.epsilon) {
            self.rng.uniform_usize(0, self.weights.len() - 1)
        } else {
            self.greedy(x)
        }
    }

    /// One TD(0) update: `Q(s,a) ← Q(s,a) + α (r + γ maxₐ' Q(s',a') − Q(s,a))`.
    /// `terminal` drops the bootstrap term.
    pub fn update(
        &mut self,
        x: &[f64],
        action: usize,
        reward: f64,
        x_next: &[f64],
        terminal: bool,
    ) {
        let bootstrap = if terminal {
            0.0
        } else {
            self.config.gamma * self.q(x_next, self.greedy(x_next))
        };
        let td = reward + bootstrap - self.q(x, action);
        let step = self.config.alpha * td / self.coder.tilings as f64;
        for i in self.coder.active(x) {
            self.weights[action][i] += step;
        }
    }

    /// Decays epsilon at an episode boundary.
    pub fn end_episode(&mut self) {
        self.epsilon *= self.config.epsilon_decay;
    }
}

/// Bandit hyperparameters, stamped into `BENCH_policy_env.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BanditConfig {
    /// Exploration rate (constant; the bandit is stateless across steps
    /// so decay buys little over these short horizons).
    pub epsilon: f64,
    /// Training episodes.
    pub episodes: u32,
    /// RNG seed for exploration (isolated substream).
    pub seed: u64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            epsilon: 0.25,
            episodes: 6,
            seed: 2,
        }
    }
}

/// Epsilon-greedy contextual bandit: a per-(context, action) running mean
/// of immediate reward. The context is a small discrete bucket of the
/// observation ([`context_bucket`]). No credit assignment across steps —
/// the contrast against the Q-learner isolates how much the *temporal*
/// structure of the problem matters.
pub struct ContextualBandit {
    config: BanditConfig,
    n_contexts: usize,
    counts: Vec<Vec<u64>>,
    sums: Vec<Vec<f64>>,
    rng: SimRng,
}

impl ContextualBandit {
    /// Creates a bandit over `n_contexts × n_actions` cells.
    #[must_use]
    pub fn new(n_contexts: usize, n_actions: usize, config: BanditConfig) -> Self {
        ContextualBandit {
            config,
            n_contexts,
            counts: vec![vec![0; n_actions]; n_contexts],
            sums: vec![vec![0.0; n_actions]; n_contexts],
            rng: SimRng::new(config.seed).stream("bandit/epsilon"),
        }
    }

    /// The hyperparameters.
    #[must_use]
    pub fn config(&self) -> &BanditConfig {
        &self.config
    }

    /// Mean observed reward of `action` in `context` (0 when untried).
    #[must_use]
    pub fn mean(&self, context: usize, action: usize) -> f64 {
        let n = self.counts[context][action];
        if n == 0 {
            0.0
        } else {
            self.sums[context][action] / n as f64
        }
    }

    /// Greedy action for a context; untried actions win (optimistic), ties
    /// break to the lowest index (determinism).
    #[must_use]
    pub fn greedy(&self, context: usize) -> usize {
        let n_actions = self.counts[context].len();
        // Prefer any untried action first, in index order.
        if let Some(a) = (0..n_actions).find(|&a| self.counts[context][a] == 0) {
            return a;
        }
        let mut best = 0;
        let mut best_m = f64::NEG_INFINITY;
        for a in 0..n_actions {
            let m = self.mean(context, a);
            if m > best_m {
                best_m = m;
                best = a;
            }
        }
        best
    }

    /// Epsilon-greedy action for training.
    pub fn act(&mut self, context: usize) -> usize {
        let n_actions = self.counts[context].len();
        if self.rng.bernoulli(self.config.epsilon) {
            self.rng.uniform_usize(0, n_actions - 1)
        } else {
            self.greedy(context)
        }
    }

    /// Records an observed immediate reward.
    ///
    /// # Panics
    /// Panics if `context` is out of range.
    pub fn update(&mut self, context: usize, action: usize, reward: f64) {
        assert!(context < self.n_contexts, "context out of range");
        self.counts[context][action] += 1;
        self.sums[context][action] += reward;
    }
}

/// A named macro-action: the control actions one catalog entry emits at a
/// decision point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MacroAction {
    /// Stable name (stamped into trajectories and the bench JSON).
    pub name: &'static str,
    /// The control actions the entry emits.
    pub actions: Vec<ControlAction>,
}

/// The discrete action space both learners act over.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ActionCatalog {
    /// The macro-actions, in stable order.
    pub entries: Vec<MacroAction>,
}

impl ActionCatalog {
    /// The standard catalog: a no-op, three idle-shutdown postures, and
    /// three DVFS default-frequency postures. Deliberately excludes
    /// budget resizing (a learner that can raise its own cap optimizes
    /// away the penalty, not the behaviour) and emergency shedding (a
    /// safety mechanism, not a policy knob).
    #[must_use]
    pub fn standard() -> Self {
        let eager = ShutdownPolicy {
            idle_threshold: SimDuration::from_secs(300.0),
            min_idle_reserve: 1,
            ..ShutdownPolicy::default()
        };
        let lazy = ShutdownPolicy {
            idle_threshold: SimDuration::from_secs(1800.0),
            min_idle_reserve: 4,
            ..ShutdownPolicy::default()
        };
        ActionCatalog {
            entries: vec![
                MacroAction {
                    name: "noop",
                    actions: vec![],
                },
                MacroAction {
                    name: "shutdown-eager",
                    actions: vec![ControlAction::SetIdleShutdown {
                        policy: Some(eager),
                    }],
                },
                MacroAction {
                    name: "shutdown-lazy",
                    actions: vec![ControlAction::SetIdleShutdown { policy: Some(lazy) }],
                },
                MacroAction {
                    name: "shutdown-off",
                    actions: vec![ControlAction::SetIdleShutdown { policy: None }],
                },
                MacroAction {
                    name: "freq-low",
                    actions: vec![ControlAction::SetDefaultFrequency {
                        freq_ghz: Some(1.2),
                    }],
                },
                MacroAction {
                    name: "freq-mid",
                    actions: vec![ControlAction::SetDefaultFrequency {
                        freq_ghz: Some(1.8),
                    }],
                },
                MacroAction {
                    name: "freq-base",
                    actions: vec![ControlAction::SetDefaultFrequency { freq_ghz: None }],
                },
            ],
        }
    }

    /// Number of actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The continuous feature vector the tile coder consumes: queue pressure
/// (log-compressed depth), free fraction, off fraction, and power
/// headroom fraction. All in `[0, 1]`-ish ranges so one set of tile dims
/// fits every site.
#[must_use]
pub fn observation_features(o: &Observation) -> Vec<f64> {
    let total = f64::from(o.total_nodes).max(1.0);
    let queue_pressure = ((o.queue_depth as f64) + 1.0).ln() / 6.0;
    let free_frac = f64::from(o.free_nodes) / total;
    let off_frac = f64::from(o.off_nodes) / total;
    let headroom_frac = if o.budget_watts.is_finite() && o.budget_watts > 0.0 {
        (o.headroom_watts / o.budget_watts).clamp(0.0, 1.0)
    } else {
        1.0
    };
    vec![queue_pressure, free_frac, off_frac, headroom_frac]
}

/// The tile-coding geometry matched to [`observation_features`].
#[must_use]
pub fn standard_tiling() -> TileCoding {
    TileCoding {
        dims: vec![
            TileDim {
                lo: 0.0,
                hi: 1.5,
                bins: 4,
            },
            TileDim {
                lo: 0.0,
                hi: 1.0,
                bins: 4,
            },
            TileDim {
                lo: 0.0,
                hi: 1.0,
                bins: 3,
            },
            TileDim {
                lo: 0.0,
                hi: 1.0,
                bins: 3,
            },
        ],
        tilings: 4,
    }
}

/// Number of discrete contexts [`context_bucket`] can produce.
pub const N_CONTEXTS: usize = 18;

/// A coarse discrete context for the bandit: queue pressure (3 levels) ×
/// free fraction (3 levels) × headroom (2 levels).
#[must_use]
pub fn context_bucket(o: &Observation) -> usize {
    let total = f64::from(o.total_nodes).max(1.0);
    let queue = match o.queue_depth {
        0 => 0,
        1..=8 => 1,
        _ => 2,
    };
    let free_frac = f64::from(o.free_nodes) / total;
    let free = if free_frac < 0.2 {
        0
    } else if free_frac < 0.6 {
        1
    } else {
        2
    };
    let headroom = if o.budget_watts.is_finite() && o.headroom_watts / o.budget_watts.max(1.0) < 0.2
    {
        0
    } else {
        1
    };
    (queue * 3 + free) * 2 + headroom
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimTime;

    fn obs(queue: u64, free: u32, off: u32) -> Observation {
        Observation {
            t: SimTime::ZERO,
            queue_depth: queue,
            queued_node_demand: queue * 4,
            wait_p50_secs: 0.0,
            wait_p90_secs: 0.0,
            free_nodes: free,
            off_nodes: off,
            down_nodes: 0,
            booting_nodes: 0,
            total_nodes: 64,
            running_jobs: 3,
            system_watts: 1000.0,
            budget_watts: 2000.0,
            headroom_watts: 1000.0,
            temperature_c: 20.0,
            telemetry_stale: false,
            emergency_armed: false,
            start_hold: false,
            price_per_mwh: 0.0,
            carbon_g_per_kwh: 0.0,
            dr_active: false,
            pue: 1.0,
        }
    }

    #[test]
    fn tile_coding_is_stable_and_in_range() {
        let tc = standard_tiling();
        let x = observation_features(&obs(5, 10, 2));
        let a1 = tc.active(&x);
        let a2 = tc.active(&x);
        assert_eq!(a1, a2);
        assert_eq!(a1.len(), tc.tilings);
        for &i in &a1 {
            assert!(i < tc.n_features());
        }
        // Distinct observations generally land on distinct tiles.
        let y = observation_features(&obs(200, 0, 40));
        assert_ne!(tc.active(&x), tc.active(&y));
    }

    #[test]
    fn q_update_moves_toward_target() {
        let tc = standard_tiling();
        let mut q = QLearner::new(tc, 3, QConfig::default());
        let x = observation_features(&obs(5, 10, 2));
        assert_eq!(q.q(&x, 1), 0.0);
        for _ in 0..200 {
            q.update(&x, 1, -2.0, &x, true);
        }
        assert!((q.q(&x, 1) - (-2.0)).abs() < 1e-3, "{}", q.q(&x, 1));
        // Greedy prefers the best-valued action (others stayed at 0 > −2,
        // so greedy avoids action 1).
        assert_ne!(q.greedy(&x), 1);
    }

    #[test]
    fn learner_randomness_is_reproducible() {
        let tc = standard_tiling();
        let x = observation_features(&obs(5, 10, 2));
        let mut a = QLearner::new(tc.clone(), 5, QConfig::default());
        let mut b = QLearner::new(tc, 5, QConfig::default());
        let seq_a: Vec<usize> = (0..50).map(|_| a.act(&x)).collect();
        let seq_b: Vec<usize> = (0..50).map(|_| b.act(&x)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn bandit_prefers_rewarding_action() {
        let mut b = ContextualBandit::new(N_CONTEXTS, 3, BanditConfig::default());
        let c = context_bucket(&obs(5, 10, 2));
        // Try everything once (optimistic init), then reward action 2.
        for a in 0..3 {
            b.update(c, a, if a == 2 { 1.0 } else { -1.0 });
        }
        assert_eq!(b.greedy(c), 2);
    }

    #[test]
    fn context_bucket_in_range() {
        for (q, f) in [(0u64, 0u32), (5, 20), (100, 60)] {
            let c = context_bucket(&obs(q, f, 0));
            assert!(c < N_CONTEXTS, "{c}");
        }
    }

    #[test]
    fn standard_catalog_excludes_budget_and_emergency() {
        let cat = ActionCatalog::standard();
        assert!(!cat.is_empty());
        for e in &cat.entries {
            for a in &e.actions {
                assert!(
                    !matches!(
                        a,
                        ControlAction::ResizeBudget { .. } | ControlAction::EmergencyShed { .. }
                    ),
                    "{:?} must not be learnable",
                    a
                );
            }
        }
    }
}
