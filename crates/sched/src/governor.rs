//! GEOPM-style per-phase frequency governance.
//!
//! LRZ and STFC both report *research* activities "investigating merging
//! SLURM and GEOPM for system energy & power control" (Tables I/II).
//! GEOPM's key idea over job-level energy-aware scheduling: the governor
//! follows the application's *phases*, picking a different operating
//! point for compute-bound and memory-bound regions instead of one
//! frequency for the whole job.
//!
//! [`PhaseGovernor::plan`] produces a per-phase frequency plan for one of
//! three objectives; experiment E11 quantifies the per-phase advantage
//! over the single-frequency LoadLeveler-style policy of
//! [`crate::policies::energy_aware::EnergyAwareScheduler`].

use epa_power::dvfs::DvfsModel;
use epa_workload::job::Phase;
use serde::{Deserialize, Serialize};

/// What the governor optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GovernorObjective {
    /// Minimize energy subject to an aggregate runtime-inflation bound.
    EnergyWithinSlowdown {
        /// Maximum tolerated aggregate slowdown (e.g. 1.1 = 10%).
        max_slowdown: f64,
    },
    /// Keep every phase's busy power at or below a cap.
    PowerCap {
        /// Per-node cap in watts.
        watts: f64,
    },
    /// Run everything at maximum frequency.
    MaxPerformance,
}

/// A per-phase frequency plan and its predicted consequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePlan {
    /// One frequency (GHz) per input phase.
    pub freqs_ghz: Vec<f64>,
    /// Aggregate runtime inflation relative to base frequency.
    pub slowdown: f64,
    /// Energy relative to running every phase at base frequency.
    pub energy_ratio: f64,
    /// Highest per-phase busy power in the plan, watts.
    pub peak_watts: f64,
}

/// The phase governor.
#[derive(Debug, Clone)]
pub struct PhaseGovernor {
    dvfs: DvfsModel,
    objective: GovernorObjective,
}

impl PhaseGovernor {
    /// Creates a governor over a node's DVFS model.
    #[must_use]
    pub fn new(dvfs: DvfsModel, objective: GovernorObjective) -> Self {
        PhaseGovernor { dvfs, objective }
    }

    /// The objective.
    #[must_use]
    pub fn objective(&self) -> GovernorObjective {
        self.objective
    }

    /// Plans frequencies for normalized phases (weights should sum to 1;
    /// they are re-normalized defensively).
    ///
    /// # Panics
    /// Panics if `phases` is empty.
    #[must_use]
    pub fn plan(&self, phases: &[Phase]) -> PhasePlan {
        assert!(!phases.is_empty(), "governor needs at least one phase");
        let total_w: f64 = phases.iter().map(|p| p.weight).sum();
        let norm: Vec<Phase> = phases
            .iter()
            .map(|p| Phase {
                weight: if total_w > 0.0 {
                    p.weight / total_w
                } else {
                    1.0 / phases.len() as f64
                },
                ..*p
            })
            .collect();
        let base = self.dvfs.cpu().base_freq_ghz;
        let freqs = match self.objective {
            GovernorObjective::MaxPerformance => {
                vec![self.dvfs.cpu().max_freq_ghz; norm.len()]
            }
            GovernorObjective::PowerCap { watts } => norm
                .iter()
                .map(|_| {
                    self.dvfs
                        .max_frequency_under_cap(watts)
                        .unwrap_or(self.dvfs.cpu().min_freq_ghz)
                })
                .collect(),
            GovernorObjective::EnergyWithinSlowdown { max_slowdown } => {
                self.plan_energy(&norm, max_slowdown)
            }
        };
        self.evaluate_internal(&norm, freqs, base)
    }

    /// Greedy energy plan: start each phase at its per-phase energy
    /// optimum; while the aggregate slowdown bound is violated, raise the
    /// frequency of whichever phase buys the most slowdown reduction per
    /// joule added.
    fn plan_energy(&self, phases: &[Phase], max_slowdown: f64) -> Vec<f64> {
        // The ladder plus the base point: base frequency is always a legal
        // operating point even when the discrete ladder skips over it.
        let mut ladder = self.dvfs.cpu().frequency_ladder();
        ladder.push(self.dvfs.cpu().base_freq_ghz);
        ladder.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ladder.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut idx: Vec<usize> = phases
            .iter()
            .map(|p| {
                let opt = self.dvfs.energy_optimal_frequency(p.cpu_boundness);
                ladder
                    .iter()
                    .position(|&f| (f - opt).abs() < 1e-9)
                    .unwrap_or(ladder.len() - 1)
            })
            .collect();
        let agg_slowdown = |idx: &[usize]| -> f64 {
            phases
                .iter()
                .zip(idx)
                .map(|(p, &i)| p.weight * self.dvfs.slowdown(ladder[i], p.cpu_boundness))
                .sum()
        };
        let mut guard = 0;
        while agg_slowdown(&idx) > max_slowdown && guard < ladder.len() * phases.len() {
            guard += 1;
            // Pick the phase whose next ladder step up reduces weighted
            // slowdown the most per unit of weighted energy increase.
            let mut best: Option<(usize, f64)> = None;
            for (k, p) in phases.iter().enumerate() {
                if idx[k] + 1 >= ladder.len() {
                    continue;
                }
                let cur = ladder[idx[k]];
                let next = ladder[idx[k] + 1];
                let d_slow = p.weight
                    * (self.dvfs.slowdown(cur, p.cpu_boundness)
                        - self.dvfs.slowdown(next, p.cpu_boundness));
                let d_energy = p.weight
                    * (self.dvfs.phase_energy(1.0, next, p.cpu_boundness)
                        - self.dvfs.phase_energy(1.0, cur, p.cpu_boundness));
                let score = d_slow / d_energy.max(1e-12);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((k, score));
                }
            }
            match best {
                Some((k, _)) => idx[k] += 1,
                None => break, // everything already at max
            }
        }
        idx.into_iter().map(|i| ladder[i]).collect()
    }

    /// Control-plane adapter: collapses the per-phase plan into one
    /// [`ControlAction::SetDefaultFrequency`] carrying the phase-weighted
    /// mean frequency — the closest job-level default the engine's
    /// unified apply path can enforce (the engine has no intra-job phase
    /// actuation point). The action goes through the same validation
    /// funnel as every learned controller's frequency request.
    ///
    /// # Panics
    /// Panics if `phases` is empty (same contract as [`Self::plan`]).
    #[must_use]
    pub fn as_control_action(&self, phases: &[Phase]) -> crate::control::ControlAction {
        let plan = self.plan(phases);
        let total_w: f64 = phases.iter().map(|p| p.weight).sum();
        let mean = if total_w > 0.0 {
            phases
                .iter()
                .zip(&plan.freqs_ghz)
                .map(|(p, &f)| p.weight / total_w * f)
                .sum()
        } else {
            plan.freqs_ghz.iter().sum::<f64>() / plan.freqs_ghz.len() as f64
        };
        crate::control::ControlAction::SetDefaultFrequency {
            freq_ghz: Some(mean),
        }
    }

    fn evaluate_internal(&self, phases: &[Phase], freqs: Vec<f64>, base: f64) -> PhasePlan {
        let slowdown: f64 = phases
            .iter()
            .zip(&freqs)
            .map(|(p, &f)| p.weight * self.dvfs.slowdown(f, p.cpu_boundness))
            .sum();
        let energy: f64 = phases
            .iter()
            .zip(&freqs)
            .map(|(p, &f)| p.weight * self.dvfs.phase_energy(1.0, f, p.cpu_boundness))
            .sum();
        let base_energy: f64 = phases
            .iter()
            .map(|p| p.weight * self.dvfs.phase_energy(1.0, base, p.cpu_boundness))
            .sum();
        let peak = freqs
            .iter()
            .map(|&f| self.dvfs.busy_watts(f))
            .fold(0.0, f64::max);
        PhasePlan {
            freqs_ghz: freqs,
            slowdown,
            energy_ratio: energy / base_energy.max(1e-12),
            peak_watts: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_cluster::node::NodeSpec;
    use epa_workload::job::AppProfile;

    fn governor(obj: GovernorObjective) -> PhaseGovernor {
        PhaseGovernor::new(DvfsModel::new(NodeSpec::typical_xeon()), obj)
    }

    #[test]
    fn max_performance_pins_to_max() {
        let g = governor(GovernorObjective::MaxPerformance);
        let plan = g.plan(&AppProfile::balanced("x").phases);
        for f in &plan.freqs_ghz {
            assert_eq!(*f, g.dvfs.cpu().max_freq_ghz);
        }
        assert!(plan.slowdown < 1.0, "turbo speeds up compute phases");
    }

    #[test]
    fn power_cap_respected_per_phase() {
        let g = governor(GovernorObjective::PowerCap { watts: 220.0 });
        let plan = g.plan(&AppProfile::balanced("x").phases);
        assert!(plan.peak_watts <= 220.0 + 1e-9, "peak {}", plan.peak_watts);
    }

    #[test]
    fn energy_plan_honors_slowdown_bound() {
        for bound in [1.02, 1.05, 1.1, 1.3] {
            let g = governor(GovernorObjective::EnergyWithinSlowdown {
                max_slowdown: bound,
            });
            for app in [
                AppProfile::balanced("a"),
                AppProfile::compute_bound("b"),
                AppProfile::memory_bound("c"),
            ] {
                let plan = g.plan(&app.phases);
                assert!(
                    plan.slowdown <= bound + 1e-6,
                    "{}: slowdown {} > bound {bound}",
                    app.tag,
                    plan.slowdown
                );
            }
        }
    }

    #[test]
    fn energy_plan_saves_energy() {
        let g = governor(GovernorObjective::EnergyWithinSlowdown { max_slowdown: 1.1 });
        let plan = g.plan(&AppProfile::balanced("x").phases);
        assert!(plan.energy_ratio < 1.0, "ratio {}", plan.energy_ratio);
    }

    #[test]
    fn per_phase_beats_single_frequency() {
        // The GEOPM pitch: on a mixed workload, per-phase control attains
        // lower energy than any single frequency meeting the same bound.
        let bound = 1.08;
        let g = governor(GovernorObjective::EnergyWithinSlowdown {
            max_slowdown: bound,
        });
        let app = AppProfile::balanced("mixed");
        let plan = g.plan(&app.phases);
        // Best single frequency meeting the bound.
        let dvfs = DvfsModel::new(NodeSpec::typical_xeon());
        let total_w: f64 = app.phases.iter().map(|p| p.weight).sum();
        let mut best_single = f64::INFINITY;
        for f in dvfs.cpu().frequency_ladder() {
            let slow: f64 = app
                .phases
                .iter()
                .map(|p| p.weight / total_w * dvfs.slowdown(f, p.cpu_boundness))
                .sum();
            if slow > bound {
                continue;
            }
            let e: f64 = app
                .phases
                .iter()
                .map(|p| p.weight / total_w * dvfs.phase_energy(1.0, f, p.cpu_boundness))
                .sum();
            best_single = best_single.min(e);
        }
        let base_e: f64 = app
            .phases
            .iter()
            .map(|p| {
                p.weight / total_w
                    * dvfs.phase_energy(1.0, dvfs.cpu().base_freq_ghz, p.cpu_boundness)
            })
            .sum();
        let single_ratio = best_single / base_e;
        assert!(
            plan.energy_ratio <= single_ratio + 1e-9,
            "per-phase {} vs single {}",
            plan.energy_ratio,
            single_ratio
        );
    }

    #[test]
    fn memory_phases_run_slow_compute_phases_fast() {
        let g = governor(GovernorObjective::EnergyWithinSlowdown { max_slowdown: 1.05 });
        let app = AppProfile::balanced("x"); // phase 0 compute (β=.9), phase 2 memory (β=.1)
        let plan = g.plan(&app.phases);
        assert!(
            plan.freqs_ghz[2] <= plan.freqs_ghz[0],
            "memory phase should not run faster than compute phase: {:?}",
            plan.freqs_ghz
        );
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panic() {
        let g = governor(GovernorObjective::MaxPerformance);
        let _ = g.plan(&[]);
    }

    #[test]
    fn control_action_carries_weighted_mean_frequency() {
        let g = governor(GovernorObjective::MaxPerformance);
        let app = AppProfile::balanced("x");
        // MaxPerformance pins every phase to max, so the weighted mean is
        // exactly the max frequency.
        match g.as_control_action(&app.phases) {
            crate::control::ControlAction::SetDefaultFrequency { freq_ghz: Some(f) } => {
                assert!((f - g.dvfs.cpu().max_freq_ghz).abs() < 1e-9, "{f}");
            }
            other => panic!("unexpected action {other:?}"),
        }
        // An energy plan's mean sits inside the ladder's range.
        let g = governor(GovernorObjective::EnergyWithinSlowdown { max_slowdown: 1.1 });
        match g.as_control_action(&app.phases) {
            crate::control::ControlAction::SetDefaultFrequency { freq_ghz: Some(f) } => {
                assert!(f >= g.dvfs.cpu().min_freq_ghz && f <= g.dvfs.cpu().max_freq_ghz);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
}
