//! Inter-system power-budget sharing and grid-aware federation.
//!
//! Table I, Tokyo Tech technology development: "Inter-system power
//! capping. TSUBAME2 and TSUBAME3 will need to share the facility power
//! budget." The coordinator owns the facility's IT budget and splits it
//! between systems; each system's engine runs with its share as its
//! `power_budget_watts`. Re-splits happen between simulation episodes
//! (coarse-grained coordination, matching the ~30 min enforcement windows
//! reported in the survey).
//!
//! [`FollowRenewablesPlanner`] extends the same mechanism across the nine
//! surveyed sites: each window it ranks sites by a weighted cost/carbon
//! attractiveness read from their grid traces and water-fills the
//! *deferrable* portion of the federated load into the cheapest/cleanest
//! spare capacity — follow-the-sun meta-scheduling over time zones.

use epa_power::error::PowerError;
use serde::{Deserialize, Serialize};

/// How the shared budget is split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Fixed fractions per system (must sum to ≤ 1).
    Fixed,
    /// Proportional to each system's reported demand.
    DemandProportional,
}

/// Coordinates one facility budget across multiple systems.
#[derive(Debug, Clone)]
pub struct InterSystemCoordinator {
    total_watts: f64,
    fixed_fractions: Vec<f64>,
    rule: SplitRule,
}

impl InterSystemCoordinator {
    /// Creates a coordinator with fixed fractions (used by
    /// [`SplitRule::Fixed`]; also the fallback when demand is zero).
    pub fn new(
        total_watts: f64,
        fixed_fractions: Vec<f64>,
        rule: SplitRule,
    ) -> Result<Self, PowerError> {
        if total_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(
                "total budget must be positive".into(),
            ));
        }
        if fixed_fractions.is_empty() {
            return Err(PowerError::InvalidConfig("need at least one system".into()));
        }
        let sum: f64 = fixed_fractions.iter().sum();
        if fixed_fractions.iter().any(|&f| f < 0.0) || sum > 1.0 + 1e-9 {
            return Err(PowerError::InvalidConfig(format!(
                "fractions must be non-negative and sum to <= 1, sum = {sum}"
            )));
        }
        Ok(InterSystemCoordinator {
            total_watts,
            fixed_fractions,
            rule,
        })
    }

    /// Number of coordinated systems.
    #[must_use]
    pub fn systems(&self) -> usize {
        self.fixed_fractions.len()
    }

    /// The facility IT budget.
    #[must_use]
    pub fn total_watts(&self) -> f64 {
        self.total_watts
    }

    /// Computes each system's share for the next enforcement window.
    /// `demands` are each system's reported wants in watts (same length
    /// as the system count).
    ///
    /// # Panics
    /// Panics if `demands.len()` differs from the system count.
    #[must_use]
    pub fn split(&self, demands: &[f64]) -> Vec<f64> {
        assert_eq!(demands.len(), self.systems(), "demand vector length");
        match self.rule {
            SplitRule::Fixed => self
                .fixed_fractions
                .iter()
                .map(|f| f * self.total_watts)
                .collect(),
            SplitRule::DemandProportional => {
                let total_demand: f64 = demands.iter().map(|d| d.max(0.0)).sum();
                if total_demand <= 0.0 {
                    return self
                        .fixed_fractions
                        .iter()
                        .map(|f| f * self.total_watts)
                        .collect();
                }
                // Cap each share at its demand; redistribute the surplus to
                // still-hungry systems proportionally (single water-fill pass
                // repeated to fixpoint).
                let mut share: Vec<f64> = demands
                    .iter()
                    .map(|d| self.total_watts * d.max(0.0) / total_demand)
                    .collect();
                for _ in 0..demands.len() {
                    let mut surplus = 0.0;
                    let mut hungry_demand = 0.0;
                    for (s, d) in share.iter_mut().zip(demands) {
                        if *s > *d {
                            surplus += *s - *d;
                            *s = *d;
                        } else if *s < *d {
                            hungry_demand += d - *s;
                        }
                    }
                    if surplus <= 1e-9 || hungry_demand <= 1e-9 {
                        break;
                    }
                    for (s, d) in share.iter_mut().zip(demands) {
                        if *s < *d {
                            *s += surplus * (*d - *s) / hungry_demand;
                        }
                    }
                }
                share
            }
        }
    }
}

/// What the federation optimizes when placing deferrable load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridObjective {
    /// Weight on (normalized) electricity price.
    pub cost_weight: f64,
    /// Weight on (normalized) carbon intensity.
    pub carbon_weight: f64,
}

impl GridObjective {
    /// Pure cost minimization.
    #[must_use]
    pub fn cheapest() -> Self {
        GridObjective {
            cost_weight: 1.0,
            carbon_weight: 0.0,
        }
    }

    /// Pure carbon minimization.
    #[must_use]
    pub fn greenest() -> Self {
        GridObjective {
            cost_weight: 0.0,
            carbon_weight: 1.0,
        }
    }
}

/// One site's state for a planning window, as read from its grid traces
/// and engine at the window barrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SiteWindowState {
    /// Electricity price this window, currency per MWh.
    pub price_per_mwh: f64,
    /// Carbon intensity this window, gCO₂ per kWh.
    pub carbon_g_per_kwh: f64,
    /// IT capacity the site can take this window, watts (its current
    /// grid-derated budget).
    pub capacity_watts: f64,
    /// Non-deferrable local load already placed at the site, watts.
    pub local_demand_watts: f64,
}

impl SiteWindowState {
    /// Spare capacity available for migrated load, watts.
    #[must_use]
    pub fn spare_watts(&self) -> f64 {
        (self.capacity_watts - self.local_demand_watts).max(0.0)
    }
}

/// Plans where the federation's deferrable load runs each window.
#[derive(Debug, Clone)]
pub struct FollowRenewablesPlanner {
    objective: GridObjective,
}

impl FollowRenewablesPlanner {
    /// Creates a planner. Weights must be non-negative and not both zero.
    pub fn new(objective: GridObjective) -> Result<Self, PowerError> {
        if objective.cost_weight < 0.0
            || objective.carbon_weight < 0.0
            || objective.cost_weight + objective.carbon_weight <= 0.0
        {
            return Err(PowerError::InvalidConfig(
                "objective weights must be non-negative and not both zero".into(),
            ));
        }
        Ok(FollowRenewablesPlanner { objective })
    }

    /// The planner's objective.
    #[must_use]
    pub fn objective(&self) -> GridObjective {
        self.objective
    }

    /// Each site's attractiveness score this window — *lower is better*.
    /// Price and carbon are normalized across the federation (so a
    /// cheap-but-dirty site and a clean-but-expensive site trade off on
    /// the weights alone, not on units).
    #[must_use]
    pub fn scores(&self, sites: &[SiteWindowState]) -> Vec<f64> {
        let norm = |get: fn(&SiteWindowState) -> f64| -> Vec<f64> {
            let lo = sites.iter().map(get).fold(f64::INFINITY, f64::min);
            let hi = sites.iter().map(get).fold(f64::NEG_INFINITY, f64::max);
            sites
                .iter()
                .map(|s| {
                    if hi - lo <= 1e-12 {
                        0.5
                    } else {
                        (get(s) - lo) / (hi - lo)
                    }
                })
                .collect()
        };
        let price = norm(|s| s.price_per_mwh);
        let carbon = norm(|s| s.carbon_g_per_kwh);
        price
            .iter()
            .zip(&carbon)
            .map(|(p, c)| self.objective.cost_weight * p + self.objective.carbon_weight * c)
            .collect()
    }

    /// Places `deferrable_watts` of migratable load into the sites'
    /// spare capacity, cheapest/cleanest first (greedy fill in score
    /// order, ties broken by site index for determinism). Returns the
    /// per-site placement; its sum is `min(deferrable, total spare)` —
    /// unplaceable load stays in the federated backlog for the next
    /// window.
    ///
    /// # Panics
    /// Panics if `sites` is empty.
    #[must_use]
    pub fn place(&self, sites: &[SiteWindowState], deferrable_watts: f64) -> Vec<f64> {
        assert!(!sites.is_empty(), "cannot place load on zero sites");
        let scores = self.scores(sites);
        let mut order: Vec<usize> = (0..sites.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("finite scores")
                .then(a.cmp(&b))
        });
        let mut placed = vec![0.0; sites.len()];
        let mut remaining = deferrable_watts.max(0.0);
        for i in order {
            if remaining <= 0.0 {
                break;
            }
            let take = sites[i].spare_watts().min(remaining);
            placed[i] = take;
            remaining -= take;
        }
        placed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_split() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.6, 0.4], SplitRule::Fixed).unwrap();
        assert_eq!(c.split(&[9999.0, 1.0]), vec![600.0, 400.0]);
    }

    #[test]
    fn proportional_split_follows_demand() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        let s = c.split(&[300.0, 900.0]);
        assert!((s[0] - 250.0).abs() < 1e-9);
        assert!((s[1] - 750.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_caps_at_demand_when_budget_exceeds_demand() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        // Total demand (400) below budget: everyone gets exactly their
        // demand, the surplus stays unallocated.
        let s = c.split(&[100.0, 300.0]);
        assert!((s[0] - 100.0).abs() < 1e-6);
        assert!((s[1] - 300.0).abs() < 1e-6);
    }

    #[test]
    fn proportional_rations_scarce_budget() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        // Total demand 2100 > budget: pure proportional rationing.
        let s = c.split(&[100.0, 2000.0]);
        assert!((s[0] - 1000.0 * 100.0 / 2100.0).abs() < 1e-6);
        assert!((s[1] - 1000.0 * 2000.0 / 2100.0).abs() < 1e-6);
    }

    #[test]
    fn zero_demand_falls_back_to_fixed() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.7, 0.3], SplitRule::DemandProportional)
            .unwrap();
        assert_eq!(c.split(&[0.0, 0.0]), vec![700.0, 300.0]);
    }

    #[test]
    fn split_never_exceeds_total() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        for demands in [[100.0, 100.0], [800.0, 900.0], [1500.0, 0.0]] {
            let s = c.split(&demands);
            assert!(s.iter().sum::<f64>() <= 1000.0 + 1e-6);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(InterSystemCoordinator::new(0.0, vec![1.0], SplitRule::Fixed).is_err());
        assert!(InterSystemCoordinator::new(100.0, vec![], SplitRule::Fixed).is_err());
        assert!(InterSystemCoordinator::new(100.0, vec![0.8, 0.4], SplitRule::Fixed).is_err());
        assert!(InterSystemCoordinator::new(100.0, vec![-0.1, 0.5], SplitRule::Fixed).is_err());
    }

    fn site(price: f64, carbon: f64, cap: f64, local: f64) -> SiteWindowState {
        SiteWindowState {
            price_per_mwh: price,
            carbon_g_per_kwh: carbon,
            capacity_watts: cap,
            local_demand_watts: local,
        }
    }

    #[test]
    fn planner_rejects_bad_objectives() {
        assert!(FollowRenewablesPlanner::new(GridObjective {
            cost_weight: 0.0,
            carbon_weight: 0.0
        })
        .is_err());
        assert!(FollowRenewablesPlanner::new(GridObjective {
            cost_weight: -1.0,
            carbon_weight: 2.0
        })
        .is_err());
        FollowRenewablesPlanner::new(GridObjective::cheapest()).unwrap();
    }

    #[test]
    fn cheapest_site_fills_first() {
        let p = FollowRenewablesPlanner::new(GridObjective::cheapest()).unwrap();
        let sites = [
            site(200.0, 100.0, 1000.0, 400.0), // expensive, clean
            site(80.0, 600.0, 1000.0, 400.0),  // cheap, dirty
        ];
        let placed = p.place(&sites, 500.0);
        assert_eq!(placed, vec![0.0, 500.0]);
        // The greenest objective flips the preference.
        let g = FollowRenewablesPlanner::new(GridObjective::greenest()).unwrap();
        assert_eq!(g.place(&sites, 500.0), vec![500.0, 0.0]);
    }

    #[test]
    fn overflow_spills_to_next_best_site() {
        let p = FollowRenewablesPlanner::new(GridObjective::cheapest()).unwrap();
        let sites = [
            site(80.0, 300.0, 1000.0, 800.0),  // cheap but nearly full
            site(120.0, 300.0, 1000.0, 100.0), // mid
            site(300.0, 300.0, 1000.0, 0.0),   // expensive
        ];
        let placed = p.place(&sites, 600.0);
        assert!((placed[0] - 200.0).abs() < 1e-9);
        assert!((placed[1] - 400.0).abs() < 1e-9);
        assert_eq!(placed[2], 0.0);
    }

    #[test]
    fn unplaceable_load_stays_in_backlog() {
        let p = FollowRenewablesPlanner::new(GridObjective::cheapest()).unwrap();
        let sites = [
            site(80.0, 300.0, 100.0, 50.0),
            site(90.0, 300.0, 100.0, 80.0),
        ];
        let placed = p.place(&sites, 500.0);
        let total: f64 = placed.iter().sum();
        assert!((total - 70.0).abs() < 1e-9, "only spare capacity fills");
    }

    #[test]
    fn equal_traces_tie_break_deterministically() {
        let p = FollowRenewablesPlanner::new(GridObjective::cheapest()).unwrap();
        let sites = [
            site(100.0, 300.0, 500.0, 0.0),
            site(100.0, 300.0, 500.0, 0.0),
        ];
        // Same score: lower index fills first.
        assert_eq!(p.place(&sites, 600.0), vec![500.0, 100.0]);
    }
}
