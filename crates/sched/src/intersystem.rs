//! Inter-system power-budget sharing.
//!
//! Table I, Tokyo Tech technology development: "Inter-system power
//! capping. TSUBAME2 and TSUBAME3 will need to share the facility power
//! budget." The coordinator owns the facility's IT budget and splits it
//! between systems; each system's engine runs with its share as its
//! `power_budget_watts`. Re-splits happen between simulation episodes
//! (coarse-grained coordination, matching the ~30 min enforcement windows
//! reported in the survey).

use epa_power::error::PowerError;
use serde::{Deserialize, Serialize};

/// How the shared budget is split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Fixed fractions per system (must sum to ≤ 1).
    Fixed,
    /// Proportional to each system's reported demand.
    DemandProportional,
}

/// Coordinates one facility budget across multiple systems.
#[derive(Debug, Clone)]
pub struct InterSystemCoordinator {
    total_watts: f64,
    fixed_fractions: Vec<f64>,
    rule: SplitRule,
}

impl InterSystemCoordinator {
    /// Creates a coordinator with fixed fractions (used by
    /// [`SplitRule::Fixed`]; also the fallback when demand is zero).
    pub fn new(
        total_watts: f64,
        fixed_fractions: Vec<f64>,
        rule: SplitRule,
    ) -> Result<Self, PowerError> {
        if total_watts <= 0.0 {
            return Err(PowerError::InvalidConfig(
                "total budget must be positive".into(),
            ));
        }
        if fixed_fractions.is_empty() {
            return Err(PowerError::InvalidConfig("need at least one system".into()));
        }
        let sum: f64 = fixed_fractions.iter().sum();
        if fixed_fractions.iter().any(|&f| f < 0.0) || sum > 1.0 + 1e-9 {
            return Err(PowerError::InvalidConfig(format!(
                "fractions must be non-negative and sum to <= 1, sum = {sum}"
            )));
        }
        Ok(InterSystemCoordinator {
            total_watts,
            fixed_fractions,
            rule,
        })
    }

    /// Number of coordinated systems.
    #[must_use]
    pub fn systems(&self) -> usize {
        self.fixed_fractions.len()
    }

    /// The facility IT budget.
    #[must_use]
    pub fn total_watts(&self) -> f64 {
        self.total_watts
    }

    /// Computes each system's share for the next enforcement window.
    /// `demands` are each system's reported wants in watts (same length
    /// as the system count).
    ///
    /// # Panics
    /// Panics if `demands.len()` differs from the system count.
    #[must_use]
    pub fn split(&self, demands: &[f64]) -> Vec<f64> {
        assert_eq!(demands.len(), self.systems(), "demand vector length");
        match self.rule {
            SplitRule::Fixed => self
                .fixed_fractions
                .iter()
                .map(|f| f * self.total_watts)
                .collect(),
            SplitRule::DemandProportional => {
                let total_demand: f64 = demands.iter().map(|d| d.max(0.0)).sum();
                if total_demand <= 0.0 {
                    return self
                        .fixed_fractions
                        .iter()
                        .map(|f| f * self.total_watts)
                        .collect();
                }
                // Cap each share at its demand; redistribute the surplus to
                // still-hungry systems proportionally (single water-fill pass
                // repeated to fixpoint).
                let mut share: Vec<f64> = demands
                    .iter()
                    .map(|d| self.total_watts * d.max(0.0) / total_demand)
                    .collect();
                for _ in 0..demands.len() {
                    let mut surplus = 0.0;
                    let mut hungry_demand = 0.0;
                    for (s, d) in share.iter_mut().zip(demands) {
                        if *s > *d {
                            surplus += *s - *d;
                            *s = *d;
                        } else if *s < *d {
                            hungry_demand += d - *s;
                        }
                    }
                    if surplus <= 1e-9 || hungry_demand <= 1e-9 {
                        break;
                    }
                    for (s, d) in share.iter_mut().zip(demands) {
                        if *s < *d {
                            *s += surplus * (*d - *s) / hungry_demand;
                        }
                    }
                }
                share
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_split() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.6, 0.4], SplitRule::Fixed).unwrap();
        assert_eq!(c.split(&[9999.0, 1.0]), vec![600.0, 400.0]);
    }

    #[test]
    fn proportional_split_follows_demand() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        let s = c.split(&[300.0, 900.0]);
        assert!((s[0] - 250.0).abs() < 1e-9);
        assert!((s[1] - 750.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_caps_at_demand_when_budget_exceeds_demand() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        // Total demand (400) below budget: everyone gets exactly their
        // demand, the surplus stays unallocated.
        let s = c.split(&[100.0, 300.0]);
        assert!((s[0] - 100.0).abs() < 1e-6);
        assert!((s[1] - 300.0).abs() < 1e-6);
    }

    #[test]
    fn proportional_rations_scarce_budget() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        // Total demand 2100 > budget: pure proportional rationing.
        let s = c.split(&[100.0, 2000.0]);
        assert!((s[0] - 1000.0 * 100.0 / 2100.0).abs() < 1e-6);
        assert!((s[1] - 1000.0 * 2000.0 / 2100.0).abs() < 1e-6);
    }

    #[test]
    fn zero_demand_falls_back_to_fixed() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.7, 0.3], SplitRule::DemandProportional)
            .unwrap();
        assert_eq!(c.split(&[0.0, 0.0]), vec![700.0, 300.0]);
    }

    #[test]
    fn split_never_exceeds_total() {
        let c = InterSystemCoordinator::new(1000.0, vec![0.5, 0.5], SplitRule::DemandProportional)
            .unwrap();
        for demands in [[100.0, 100.0], [800.0, 900.0], [1500.0, 0.0]] {
            let s = c.split(&demands);
            assert!(s.iter().sum::<f64>() <= 1000.0 + 1e-6);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(InterSystemCoordinator::new(0.0, vec![1.0], SplitRule::Fixed).is_err());
        assert!(InterSystemCoordinator::new(100.0, vec![], SplitRule::Fixed).is_err());
        assert!(InterSystemCoordinator::new(100.0, vec![0.8, 0.4], SplitRule::Fixed).is_err());
        assert!(InterSystemCoordinator::new(100.0, vec![-0.1, 0.5], SplitRule::Fixed).is_err());
    }
}
