//! The unified control plane: every knob the engine exposes — start
//! decisions, DVFS defaults, idle shutdown, budget resizes, backfill
//! depth, emergency shed — expressed as one [`ControlAction`] vocabulary
//! applied through a single engine path.
//!
//! The survey's Table I shows sites pulling five separate levers
//! (scheduling policy, DVFS, shutdown, capping, emergency response);
//! before this module each lever had its own hardwired code path in
//! `sched::engine`. Now the engineered mechanisms (`ShutdownPolicy`,
//! `EmergencyPolicy`, the governor, `JobLimitGate`) are *adapters* that
//! emit `ControlAction`s, and learned controllers (see [`crate::env`])
//! submit the same actions externally. Both go through
//! `ClusterSim::apply_action`, so the engine's physical-constraint
//! enforcement (allocation, budget, quantized frequencies) is identical
//! for both — a bad learner can be unprofitable but never corrupting.
//!
//! Determinism contract: actions from [`ActionSource::Engineered`] record
//! nothing (no trace events, no counters), so an engineered run through
//! the adapter path is byte-identical to the pre-refactor engine — the
//! equivalence is proptested against [`ControlMode::DirectLegacy`] in
//! `tests/control_equivalence.rs`.

use crate::emergency::VictimOrder;
use crate::shutdown::ShutdownPolicy;
use epa_obs::ControlKind;
use epa_simcore::snap::{SnapReader, SnapWriter, SnapshotError};
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::JobId;
use serde::Serialize;

/// One control decision, from an engineered adapter or an external
/// (learned) controller. "Set" variants with `None` clear the knob back
/// to its engine default; imperative variants (`Start`, `PowerOffIdle`,
/// `EmergencyShed`) act immediately.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ControlAction {
    /// Start a queued job now (the scheduler-policy decision, routed
    /// through the same apply path). The engine still enforces node
    /// availability, the power budget, and frequency quantization.
    Start {
        /// The queued job to start.
        job: JobId,
        /// Moldable node-count override.
        nodes_override: Option<u32>,
        /// Requested DVFS frequency, GHz (quantized to the ladder).
        freq_ghz: Option<f64>,
        /// Per-node power cap to program, watts.
        node_cap_watts: Option<f64>,
    },
    /// Cap the number of concurrently running jobs (`None` = uncapped).
    SetJobLimit {
        /// Maximum running jobs, if any.
        limit: Option<usize>,
    },
    /// Default DVFS frequency for starts that do not request one
    /// (`None` = the hardware base frequency). Quantized at apply time.
    SetDefaultFrequency {
        /// Frequency in GHz, if overridden.
        freq_ghz: Option<f64>,
    },
    /// How deep into the queue the scheduling policy may look
    /// (`None` = the whole queue).
    SetBackfillDepth {
        /// Queue prefix length visible to the policy, if limited.
        depth: Option<u32>,
    },
    /// Resize the facility power budget (demand response).
    ResizeBudget {
        /// New budget total, watts.
        watts: f64,
    },
    /// Override the idle-shutdown policy: `Some(Some(p))` replaces it,
    /// `Some(None)` disables shutdown entirely. (The outer level is the
    /// action; clearing the override is not expressible — engineered
    /// configuration resumes only on reset.)
    SetIdleShutdown {
        /// The override: a policy, or `None` to disable shutdown.
        policy: Option<ShutdownPolicy>,
    },
    /// Power off idle nodes now, under the given aggressiveness knobs.
    PowerOffIdle {
        /// Minimum continuous idle time before a node is eligible.
        idle_threshold: SimDuration,
        /// Idle nodes always kept on for responsiveness.
        min_idle_reserve: u32,
        /// Time until a shut node stops drawing power.
        shutdown_time: SimDuration,
    },
    /// Shed running jobs until projected draw falls to `target_watts`,
    /// then hold new starts for `cooldown`.
    EmergencyShed {
        /// The draw that triggered the shed, watts.
        observed_watts: f64,
        /// The breached limit, watts (recorded on the breach trace).
        limit_watts: f64,
        /// Shed until projected draw is at or below this, watts.
        target_watts: f64,
        /// Which running jobs die first.
        victim_order: VictimOrder,
        /// Start-hold duration after the shed.
        cooldown: SimDuration,
    },
}

impl ControlAction {
    /// The action's kind tag (for the control trace).
    #[must_use]
    pub fn kind(&self) -> ControlKind {
        match self {
            ControlAction::Start { .. } => ControlKind::Start,
            ControlAction::SetJobLimit { .. } => ControlKind::JobLimit,
            ControlAction::SetDefaultFrequency { .. } => ControlKind::DefaultFrequency,
            ControlAction::SetBackfillDepth { .. } => ControlKind::BackfillDepth,
            ControlAction::ResizeBudget { .. } => ControlKind::BudgetResize,
            ControlAction::SetIdleShutdown { .. } => ControlKind::IdleShutdown,
            ControlAction::PowerOffIdle { .. } => ControlKind::PowerOffIdle,
            ControlAction::EmergencyShed { .. } => ControlKind::EmergencyShed,
        }
    }

    /// A kind-specific scalar summary for the control trace (`-1.0`
    /// encodes "cleared" for the `Set*` knobs).
    #[must_use]
    pub fn trace_value(&self) -> f64 {
        match self {
            ControlAction::Start { job, .. } => job.0 as f64,
            ControlAction::SetJobLimit { limit } => limit.map_or(-1.0, |l| l as f64),
            ControlAction::SetDefaultFrequency { freq_ghz } => freq_ghz.unwrap_or(-1.0),
            ControlAction::SetBackfillDepth { depth } => depth.map_or(-1.0, f64::from),
            ControlAction::ResizeBudget { watts } => *watts,
            ControlAction::SetIdleShutdown { policy } => {
                policy.as_ref().map_or(-1.0, |p| p.idle_threshold.as_secs())
            }
            ControlAction::PowerOffIdle { idle_threshold, .. } => idle_threshold.as_secs(),
            ControlAction::EmergencyShed { target_watts, .. } => *target_watts,
        }
    }
}

/// Where a control action came from. Engineered applications must stay
/// byte-invisible (no traces, no counters); external ones are validated,
/// counted, and traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionSource {
    /// Emitted by an engine-internal adapter (shutdown, emergency,
    /// gate, budget-resize event, scheduler decision).
    Engineered,
    /// Submitted by an external controller through
    /// `ClusterSim::apply_external_actions` (e.g. a learned policy).
    External,
}

/// How the engine dispatches its engineered mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlMode {
    /// Engineered mechanisms emit [`ControlAction`]s through the unified
    /// apply path (the default; required for [`crate::env::PolicyEnv`]).
    #[default]
    Adapters,
    /// The pre-refactor inline dispatch, preserved verbatim so the
    /// equivalence proptests can byte-compare the two paths. Not a
    /// user-facing mode; excluded from the config fingerprint.
    DirectLegacy,
}

/// The control plane's persistent knob state — what `Set*` actions write
/// and the engine consults. Snapshot as its own section (schema v3), so
/// a resumed run continues under the same learned overrides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlState {
    /// Cap on concurrently running jobs (written by the gate adapter
    /// each round, or externally).
    pub job_limit: Option<usize>,
    /// Default DVFS frequency for new starts, GHz (already quantized).
    pub default_freq_ghz: Option<f64>,
    /// Queue prefix length visible to the scheduling policy.
    pub backfill_depth: Option<u32>,
    /// Idle-shutdown override: `Some(Some(p))` replaces the configured
    /// policy, `Some(None)` disables shutdown, `None` = no override.
    pub shutdown_override: Option<Option<ShutdownPolicy>>,
}

impl ControlState {
    /// Encodes the control section of an engine snapshot.
    pub fn snapshot_into(&self, w: &mut SnapWriter) {
        w.opt(self.job_limit.as_ref(), |w, &l| w.usize(l));
        w.opt(self.default_freq_ghz.as_ref(), |w, &f| w.f64(f));
        w.opt(self.backfill_depth.as_ref(), |w, &d| w.u32(d));
        w.opt(self.shutdown_override.as_ref(), |w, o| {
            w.opt(o.as_ref(), write_shutdown_policy);
        });
    }

    /// Decodes a section written by [`ControlState::snapshot_into`].
    pub fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ControlState {
            job_limit: r.opt(SnapReader::usize)?,
            default_freq_ghz: r.opt(SnapReader::f64)?,
            backfill_depth: r.opt(SnapReader::u32)?,
            shutdown_override: r.opt(|r| r.opt(read_shutdown_policy))?,
        })
    }
}

fn write_shutdown_policy(w: &mut SnapWriter, p: &ShutdownPolicy) {
    w.f64(p.idle_threshold.as_secs());
    w.f64(p.shutdown_time.as_secs());
    w.f64(p.boot_time.as_secs());
    w.u32(p.min_idle_reserve);
    w.opt(p.season.as_ref(), |w, &(s, e)| {
        w.u32(s);
        w.u32(e);
    });
}

fn read_shutdown_policy(r: &mut SnapReader<'_>) -> Result<ShutdownPolicy, SnapshotError> {
    Ok(ShutdownPolicy {
        idle_threshold: SimDuration::from_secs(r.f64()?),
        shutdown_time: SimDuration::from_secs(r.f64()?),
        boot_time: SimDuration::from_secs(r.f64()?),
        min_idle_reserve: r.u32()?,
        season: r.opt(|r| Ok((r.u32()?, r.u32()?)))?,
    })
}

/// A fixed-interval snapshot of everything an external controller may
/// observe: queue pressure, fleet state, power posture, and fault state.
/// Built from the engine's existing bookkeeping (the same state
/// [`crate::SchedView`] exposes plus the obs registry's wait histogram) —
/// no new plumbing, and constructing one mutates nothing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Observation {
    /// Simulation time of the snapshot.
    pub t: SimTime,
    /// Jobs waiting in the queue.
    pub queue_depth: u64,
    /// Total nodes requested by waiting jobs.
    pub queued_node_demand: u64,
    /// Median job wait so far, seconds (bucket resolution).
    pub wait_p50_secs: f64,
    /// 90th-percentile job wait so far, seconds (bucket resolution).
    pub wait_p90_secs: f64,
    /// Nodes idle and allocatable.
    pub free_nodes: u32,
    /// Nodes powered off (shutdown policy).
    pub off_nodes: u32,
    /// Nodes down for repair.
    pub down_nodes: u32,
    /// Nodes mid-boot.
    pub booting_nodes: u32,
    /// Fleet size.
    pub total_nodes: u32,
    /// Jobs currently running.
    pub running_jobs: u64,
    /// Observed system draw, watts (telemetry, possibly stale).
    pub system_watts: f64,
    /// Power-budget total, watts (`inf` when unbudgeted).
    pub budget_watts: f64,
    /// Budget headroom, watts (`inf` when unbudgeted).
    pub headroom_watts: f64,
    /// Facility ambient temperature, °C.
    pub temperature_c: f64,
    /// Telemetry is past the staleness bound (engine is on conservative
    /// fallback estimates).
    pub telemetry_stale: bool,
    /// An emergency policy is armed at this time.
    pub emergency_armed: bool,
    /// Starts are held (post-emergency cooldown).
    pub start_hold: bool,
    /// Electricity price at the last grid tick, currency per MWh (0.0
    /// when the engine runs without a grid config).
    pub price_per_mwh: f64,
    /// Carbon intensity at the last grid tick, gCO₂ per kWh (0.0 when
    /// grid-less).
    pub carbon_g_per_kwh: f64,
    /// A demand-response curtailment window is currently in force.
    pub dr_active: bool,
    /// Current PUE: the cooling loop's when a grid config carries one,
    /// else the static facility model's (1.0 without either).
    pub pue: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_values_summarize_payloads() {
        assert_eq!(
            ControlAction::SetJobLimit { limit: Some(4) }.trace_value(),
            4.0
        );
        assert_eq!(
            ControlAction::SetJobLimit { limit: None }.trace_value(),
            -1.0
        );
        assert_eq!(
            ControlAction::SetDefaultFrequency {
                freq_ghz: Some(1.8)
            }
            .kind(),
            ControlKind::DefaultFrequency
        );
        assert_eq!(
            ControlAction::ResizeBudget { watts: 5e5 }.trace_value(),
            5e5
        );
    }

    #[test]
    fn control_state_snapshot_roundtrip() {
        let states = [
            ControlState::default(),
            ControlState {
                job_limit: Some(7),
                default_freq_ghz: Some(1.5),
                backfill_depth: Some(16),
                shutdown_override: Some(None),
            },
            ControlState {
                job_limit: None,
                default_freq_ghz: None,
                backfill_depth: None,
                shutdown_override: Some(Some(ShutdownPolicy {
                    season: Some((120, 270)),
                    ..ShutdownPolicy::default()
                })),
            },
        ];
        for state in states {
            let mut w = SnapWriter::new();
            w.section("control");
            state.snapshot_into(&mut w);
            let bytes = w.finish(1);
            let mut r = SnapReader::open(&bytes, 1).expect("open");
            r.section("control").expect("section");
            let back = ControlState::restore_from(&mut r).expect("restore");
            assert_eq!(back, state);
        }
    }
}
