//! Error types for the scheduling framework.

use thiserror::Error;

/// Errors from the scheduling engine and policies.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum SchedError {
    /// A decision referenced a job that is not queued.
    #[error("job {0} is not in the queue")]
    UnknownJob(u64),

    /// A policy or engine configuration was invalid.
    #[error("invalid scheduler configuration: {0}")]
    InvalidConfig(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SchedError::UnknownJob(3).to_string(),
            "job 3 is not in the queue"
        );
    }
}
