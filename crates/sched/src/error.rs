//! Error types for the scheduling framework.

use thiserror::Error;

/// Errors from the scheduling engine and policies.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum SchedError {
    /// A decision referenced a job that is not queued.
    #[error("job {0} is not in the queue")]
    UnknownJob(u64),

    /// A policy or engine configuration was invalid.
    #[error("invalid scheduler configuration: {0}")]
    InvalidConfig(String),

    /// A policy name not present in the registry
    /// ([`crate::policies::registry::make_policy`]).
    #[error("unknown policy \"{name}\" — valid policies: {valid}")]
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
        /// Comma-separated list of every valid policy name.
        valid: String,
    },

    /// `node_mtbf` was configured as zero or negative.
    #[error("node MTBF must be positive")]
    NonPositiveMtbf,

    /// `repair_time` was configured as zero or negative.
    #[error("repair time must be positive")]
    NonPositiveRepairTime,

    /// `checkpoint_interval` was configured as zero.
    #[error("checkpoint interval must be positive")]
    ZeroCheckpointInterval,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SchedError::UnknownJob(3).to_string(),
            "job 3 is not in the queue"
        );
    }
}
