//! The cluster scheduling engine.
//!
//! [`ClusterSim`] wires every substrate together: the event kernel
//! (`epa-simcore`), the machine model and allocator (`epa-cluster`), the
//! power models, meter, and budget (`epa-power`), the workload
//! (`epa-workload`), and prediction (`epa-predict`). A [`Policy`] makes
//! the scheduling choices; the engine owns physical truth:
//!
//! - allocations (a policy can never double-book a node),
//! - power accounting (piecewise-exact energy metering),
//! - the power-budget ledger (grants made and reclaimed on start/finish),
//! - walltime enforcement (jobs are killed at their estimate),
//! - optional idle-node shutdown, emergency response, maintenance
//!   windows, and concurrency gating (the Table I/II production
//!   mechanisms).
//!
//! The engine reports a [`SimOutcome`] with the metrics every experiment
//! consumes: utilization, wait/slowdown statistics, energy, peak power,
//! violations, kills, and per-policy counters.

use crate::control::{ActionSource, ControlAction, ControlMode, ControlState, Observation};
use crate::emergency::{EmergencyPolicy, VictimOrder};
use crate::error::SchedError;
use crate::limiting::JobLimitGate;
use crate::queue::JobQueue;
use crate::shards::{EventKey, LocalEv, ShardSet, ShardWindow};
use crate::shutdown::ShutdownPolicy;
use crate::snapshot::{Snapshot, SNAPSHOT_SCHEMA_VERSION};
use crate::view::{Decision, Policy, RunningSummary, SchedView};
use epa_cluster::alloc::{AllocStrategy, Allocator};
use epa_cluster::layout::FacilityLayout;
use epa_cluster::node::NodeId;
use epa_cluster::shard::ShardTopology;
use epa_cluster::system::System;
use epa_faults::{FaultConfig, FaultInjector, FaultPlan, SensorFaultConfig, SensorSample};
use epa_grid::{GridConfig, GridState, GridSummary};
use epa_obs::{
    KillReason, Obs, ObsBundle, RejectReason, Scope, TraceCategory, TraceConfig, TraceEvent,
};
use epa_power::budget::{GrantId, PowerBudget};
use epa_power::facility::Facility;
use epa_power::meter::{EnergyMeter, GroupId};
use epa_power::node_power::{NodePowerModel, NodePowerState};
use epa_predict::history::HistoryStore;
use epa_predict::predictors::{PowerPredictor, TagMeanPredictor};
use epa_rm::actuators::{ActuatorLog, RetryingActuator};
use epa_rm::interactions::InteractionLedger;
use epa_simcore::engine::Simulation;
use epa_simcore::metrics::MetricsRegistry;
use epa_simcore::snap::{Fingerprint, SnapReader, SnapWriter, SnapshotError};
use epa_simcore::time::{SimDuration, SimTime};
use epa_workload::job::{Job, JobId};
use epa_workload::source::{JobSource, MaterializedSource};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;

/// Engine configuration.
#[derive(Clone)]
pub struct EngineConfig {
    /// Simulation horizon; events past it are dropped and accounting stops.
    pub horizon: SimTime,
    /// Node placement strategy.
    pub alloc_strategy: AllocStrategy,
    /// Interval between power ticks (telemetry, emergency checks,
    /// shutdown scans).
    pub power_tick: SimDuration,
    /// System power budget for admission control, if any (IT watts).
    pub power_budget_watts: Option<f64>,
    /// Idle-node shutdown policy, if enabled.
    pub shutdown: Option<ShutdownPolicy>,
    /// Emergency response policy, if enabled.
    pub emergency: Option<EmergencyPolicy>,
    /// Concurrency gate (MS3-style), if enabled.
    pub limit_gate: Option<JobLimitGate>,
    /// Facility model for temperature/PUE (optional; a default mild
    /// climate is used when absent).
    pub facility: Option<Facility>,
    /// Facility layout for maintenance-aware scheduling, if any.
    pub layout: Option<FacilityLayout>,
    /// Record per-job history into the prediction store.
    pub record_history: bool,
    /// Scheduled budget resizes `(time, new IT watts)` — the demand-
    /// response events of the ESP–SC interaction (Bates et al., the
    /// survey's motivating work). Requires `power_budget_watts`.
    pub budget_schedule: Vec<(SimTime, f64)>,
    /// Requeue jobs killed by emergencies or failures instead of losing
    /// them (Tokyo Tech: the RM "interacts with job scheduler to avoid
    /// killing jobs" — at minimum, killed work re-enters the queue).
    pub requeue_killed: bool,
    /// Checkpoint interval: when set, a requeued job resumes from its
    /// last checkpoint instead of restarting from zero.
    pub checkpoint_interval: Option<SimDuration>,
    /// Mean time between node failures across the whole system
    /// (exponential); `None` disables failure injection.
    pub node_mtbf: Option<SimDuration>,
    /// Repair time after a node failure.
    pub repair_time: SimDuration,
    /// Seed for engine-internal randomness (failure injection).
    pub seed: u64,
    /// Deterministic fault model: correlated rack/PDU events, telemetry
    /// sensor faults with staleness-based degradation, and unreliable
    /// actuators with retry/fence escalation. `None` injects nothing and
    /// leaves every code path byte-identical to a fault-free engine.
    pub faults: Option<FaultConfig>,
    /// Observability: the decision-trace enable mask, ring capacity, and
    /// profiling switch. The default records nothing; with categories
    /// masked off every trace site costs one branch on a bitset, and the
    /// simulated outcome is byte-identical either way.
    pub trace: TraceConfig,
    /// Shard count for the partitioned event engine. Shards are
    /// cabinet-aligned and the count is clamped to the cabinet count;
    /// the simulated outcome is byte-identical at every shard count.
    /// `None` reads `EPA_JSRM_SHARDS`, defaulting to 1.
    pub shards: Option<u32>,
    /// Keep per-job [`CompletedJob`] records in memory. Streaming runs
    /// turn this off: completions fold into incremental aggregates (and
    /// the optional JSONL sink), `SimOutcome::jobs` comes back empty,
    /// and every other outcome field is byte-identical either way.
    pub retain_completed: bool,
    /// Store the system power trace in bounded (segment-accumulator)
    /// form instead of the full point list. The outcome's energy, peak,
    /// average, and 5-minute `power_trace` stay byte-identical; raw
    /// trace access ([`ClusterSim::meter`] → `system_trace`) panics.
    pub bounded_power_trace: bool,
    /// How engineered mechanisms (shutdown, emergency, gate, budget
    /// resizes) reach the engine: through the unified [`ControlAction`]
    /// apply path (default), or the pre-refactor inline dispatch kept
    /// for the adapter-equivalence proptests. Both produce byte-identical
    /// outcomes and traces; the mode is excluded from the snapshot
    /// fingerprint.
    pub control_mode: ControlMode,
    /// Facility digital twin: price/carbon traces, demand-response
    /// contract, cooling loop. `None` (the default) leaves every code
    /// path byte-identical to the grid-less engine; `Some` co-simulates
    /// the twin at power-tick barriers, steering the IT budget through
    /// `ControlAction::ResizeBudget` / `EmergencyShed` and settling
    /// cost/carbon/penalty into [`ClusterSim::grid_summary`].
    pub grid: Option<GridConfig>,
}

/// Parses an `EPA_JSRM_SHARDS` value: a positive integer, or `None` for
/// anything else (with a description of why it was rejected).
fn parse_shards(raw: &str) -> Result<u32, String> {
    match raw.trim().parse::<u32>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(n) => Err(format!("{n} is not a positive shard count")),
        Err(_) => Err(format!("{raw:?} is not an integer")),
    }
}

/// `EPA_JSRM_SHARDS` (read once per process): requested shard count, or
/// `None` when unset/invalid. An invalid value is *not* silently
/// dropped: a one-time stderr warning names the variable and the value
/// so a typo'd `EPA_JSRM_SHARDS=abc` cannot masquerade as "unset".
fn env_shards() -> Option<u32> {
    use std::sync::OnceLock;
    static SHARDS: OnceLock<Option<u32>> = OnceLock::new();
    *SHARDS.get_or_init(|| match std::env::var("EPA_JSRM_SHARDS") {
        Ok(raw) => match parse_shards(&raw) {
            Ok(n) => Some(n),
            Err(why) => {
                eprintln!(
                    "warning: ignoring invalid EPA_JSRM_SHARDS={raw:?}: {why} \
                     (falling back to 1 shard)"
                );
                None
            }
        },
        Err(_) => None,
    })
}

impl EngineConfig {
    /// A sensible default configuration for a given horizon.
    #[must_use]
    pub fn new(horizon: SimTime) -> Self {
        EngineConfig {
            horizon,
            alloc_strategy: AllocStrategy::FirstFit,
            power_tick: SimDuration::from_mins(1.0),
            power_budget_watts: None,
            shutdown: None,
            emergency: None,
            limit_gate: None,
            facility: None,
            layout: None,
            record_history: true,
            budget_schedule: Vec::new(),
            requeue_killed: false,
            checkpoint_interval: None,
            node_mtbf: None,
            repair_time: SimDuration::from_hours(4.0),
            seed: 0xe9a,
            faults: None,
            trace: TraceConfig::default(),
            shards: None,
            retain_completed: true,
            bounded_power_trace: false,
            control_mode: ControlMode::Adapters,
            grid: None,
        }
    }

    /// Rejects degenerate fault settings: a zero/negative node MTBF, a
    /// zero repair time, a zero checkpoint interval, or an invalid
    /// [`FaultConfig`]. Called at engine construction.
    pub fn validate(&self) -> Result<(), SchedError> {
        if self.node_mtbf.is_some_and(|d| d.as_secs() <= 0.0) {
            return Err(SchedError::NonPositiveMtbf);
        }
        if self.repair_time.as_secs() <= 0.0 {
            return Err(SchedError::NonPositiveRepairTime);
        }
        if self.checkpoint_interval.is_some_and(|d| d.is_zero()) {
            return Err(SchedError::ZeroCheckpointInterval);
        }
        if let Some(f) = &self.faults {
            f.validate()
                .map_err(|e| SchedError::InvalidConfig(e.to_string()))?;
        }
        if let Some(g) = &self.grid {
            g.validate()
                .map_err(|e| SchedError::InvalidConfig(e.to_string()))?;
            // The twin steers through budget resizes; a steering config
            // without a budget would silently do nothing.
            let steers = !g.contract.events.is_empty()
                || g.cooling.is_some()
                || g.price_follow > 0.0
                || g.carbon_follow > 0.0;
            if steers && self.power_budget_watts.is_none() {
                return Err(SchedError::InvalidConfig(
                    "a steering grid config (DR events, cooling, or follow weights) \
                     requires power_budget_watts"
                        .to_owned(),
                ));
            }
        }
        Ok(())
    }
}

/// Histogram bucket bounds for the observability registry. Wait times
/// span minutes to days; queue depth is powers of two; actuation delay
/// follows the retry backoff scale; staleness age follows telemetry
/// tick/staleness-bound scales.
const WAIT_BUCKETS: [f64; 8] = [
    60.0, 300.0, 900.0, 3600.0, 14_400.0, 43_200.0, 86_400.0, 259_200.0,
];
const QUEUE_DEPTH_BUCKETS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
const ACTUATION_DELAY_BUCKETS: [f64; 8] = [0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0];
const STALENESS_AGE_BUCKETS: [f64; 6] = [60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0];

/// Sequence-number base for runtime events (power ticks, resizes,
/// failures). Staged Submit events take sequence numbers 0, 1, 2, … in
/// arrival order, so at equal timestamps every Submit precedes every
/// runtime event — exactly the order the engine produced when the whole
/// workload was pre-scheduled ahead of the runtime events. 2⁴⁰ leaves
/// room for a trillion arrivals below and 2²⁴ × 2⁴⁰ runtime events
/// above before the two ranges could meet.
const RUNTIME_SEQ_BASE: u64 = 1 << 40;

/// Grid interval of the exported system power trace
/// ([`SimOutcome::power_trace`]). The bounded trace mode samples on this
/// grid as power steps arrive, so whole-run exports match the full
/// series' resample bit-for-bit.
fn power_trace_grid() -> SimDuration {
    SimDuration::from_mins(5.0)
}

/// Global (barrier) events. Shard-local events — phase changes and
/// shutdown completions, whose handlers touch only shard-owned state —
/// live in [`ShardSet`] queues instead; see [`crate::shards`].
#[derive(Debug)]
enum Ev {
    Submit(usize),
    /// Job completion for a specific execution attempt: a kill + requeue
    /// starts a new attempt, and the stale event must not complete it.
    Finish(JobId, u32),
    PowerTick,
    BootDone(NodeId),
    BudgetResize(f64),
    NodeFail,
    RepairDone(NodeId),
    /// A correlated failure-domain event: index into the pre-generated
    /// [`FaultPlan`]'s `domain_events`.
    DomainFail(u32),
    /// A demand-response curtailment window opens: index into the grid
    /// config's contract events.
    GridDrStart(u32),
    /// The matching curtailment window closes.
    GridDrEnd(u32),
}

impl Ev {
    /// Wire tags are part of the snapshot format: stable, append-only.
    fn snapshot_into(&self, w: &mut SnapWriter) {
        match self {
            Ev::Submit(i) => {
                w.u8(0);
                w.usize(*i);
            }
            Ev::Finish(id, attempt) => {
                w.u8(1);
                w.u64(id.0);
                w.u32(*attempt);
            }
            Ev::PowerTick => w.u8(2),
            Ev::BootDone(n) => {
                w.u8(3);
                w.u32(n.0);
            }
            Ev::BudgetResize(watts) => {
                w.u8(4);
                w.f64(*watts);
            }
            Ev::NodeFail => w.u8(5),
            Ev::RepairDone(n) => {
                w.u8(6);
                w.u32(n.0);
            }
            Ev::DomainFail(idx) => {
                w.u8(7);
                w.u32(*idx);
            }
            Ev::GridDrStart(idx) => {
                w.u8(8);
                w.u32(*idx);
            }
            Ev::GridDrEnd(idx) => {
                w.u8(9);
                w.u32(*idx);
            }
        }
    }

    fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Ev::Submit(r.usize()?),
            1 => Ev::Finish(JobId(r.u64()?), r.u32()?),
            2 => Ev::PowerTick,
            3 => Ev::BootDone(NodeId(r.u32()?)),
            4 => Ev::BudgetResize(r.f64()?),
            5 => Ev::NodeFail,
            6 => Ev::RepairDone(NodeId(r.u32()?)),
            7 => Ev::DomainFail(r.u32()?),
            8 => Ev::GridDrStart(r.u32()?),
            9 => Ev::GridDrEnd(r.u32()?),
            tag => {
                return Err(SnapshotError::Corrupt {
                    detail: format!("unknown engine event tag {tag}"),
                })
            }
        })
    }
}

/// `NodePowerState` wire tags (snapshot format: stable, append-only).
fn node_state_tag(s: NodePowerState) -> u8 {
    match s {
        NodePowerState::Off => 0,
        NodePowerState::Booting => 1,
        NodePowerState::Idle => 2,
        NodePowerState::Busy => 3,
    }
}

fn node_state_from_tag(tag: u8) -> Result<NodePowerState, SnapshotError> {
    Ok(match tag {
        0 => NodePowerState::Off,
        1 => NodePowerState::Booting,
        2 => NodePowerState::Idle,
        3 => NodePowerState::Busy,
        t => {
            return Err(SnapshotError::Corrupt {
                detail: format!("unknown node power state tag {t}"),
            })
        }
    })
}

/// Resolve shard windows in parallel only when the batch is big enough
/// to amortize the fork/join, and a pool actually exists. Both branches
/// run identical math on identical inputs and merge index-ordered, so
/// the threshold affects wall clock only — never the outcome.
const PAR_RESOLVE_MIN: usize = 64;

/// The resolved, ready-to-apply effect of one shard-local event.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LocalEffect {
    /// Retarget a running job's allocation group to its next phase draw.
    SetGroupWatts { gid: GroupId, watts: f64 },
    /// An idle node's shutdown drain completed: power it off.
    NodeOff(NodeId),
    /// Stale attempt (job killed/requeued since scheduling): no-op.
    Skip,
}

/// Resolves one shard-local event against barrier state. Read-only —
/// callable from any shard's window concurrently — and exactly the
/// guard logic of the former single-queue dispatch arms.
fn resolve_local(
    attempts: &BTreeMap<JobId, u32>,
    running: &BTreeMap<JobId, RunningJob>,
    ev: LocalEv,
) -> LocalEffect {
    match ev {
        LocalEv::PhaseChange(id, attempt, phase) => {
            if attempts.get(&id).copied() == Some(attempt) {
                if let Some(r) = running.get(&id) {
                    if let Some(&watts) = r.phase_watts.get(phase) {
                        return LocalEffect::SetGroupWatts {
                            gid: r.meter_group,
                            watts,
                        };
                    }
                }
            }
            LocalEffect::Skip
        }
        LocalEv::ShutdownDone(n) => LocalEffect::NodeOff(n),
    }
}

#[derive(Debug, Clone)]
struct RunningJob {
    job: Job,
    nodes: Vec<NodeId>,
    start: SimTime,
    /// Scheduler-visible end estimate.
    estimated_end: SimTime,
    watts_per_node: f64,
    killed_at_walltime: bool,
    grant: Option<GrantId>,
    /// Base runtime after any moldable override (progress accounting).
    base_effective: SimDuration,
    /// Physical runtime the job would take uninterrupted, seconds.
    true_run_secs: f64,
    /// Per-node draw in each phase, watts.
    phase_watts: Vec<f64>,
    /// The meter's allocation group for this attempt: opened at start,
    /// stepped O(1) on each phase change, closed at completion (which
    /// yields the job's energy directly — no per-node walk per phase).
    meter_group: GroupId,
}

impl RunningJob {
    fn snapshot_into(&self, w: &mut SnapWriter) {
        self.job.snapshot_into(w);
        w.seq(&self.nodes, |w, n| w.u32(n.0));
        w.f64(self.start.as_secs());
        w.f64(self.estimated_end.as_secs());
        w.f64(self.watts_per_node);
        w.bool(self.killed_at_walltime);
        w.opt(self.grant.as_ref(), |w, g| w.u64(g.0));
        w.f64(self.base_effective.as_secs());
        w.f64(self.true_run_secs);
        w.seq(&self.phase_watts, |w, &p| w.f64(p));
        w.u32(self.meter_group.raw());
    }

    fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RunningJob {
            job: Job::restore_from(r)?,
            nodes: r.seq(|r| Ok(NodeId(r.u32()?)))?,
            start: SimTime::from_secs(r.f64()?),
            estimated_end: SimTime::from_secs(r.f64()?),
            watts_per_node: r.f64()?,
            killed_at_walltime: r.bool()?,
            grant: r.opt(|r| Ok(GrantId(r.u64()?)))?,
            base_effective: SimDuration::from_secs(r.f64()?),
            true_run_secs: r.f64()?,
            phase_watts: r.seq(SnapReader::f64)?,
            meter_group: GroupId::from_raw(r.u32()?),
        })
    }
}

/// Completed-job record for metrics.
#[derive(Debug, Clone, Serialize)]
pub struct CompletedJob {
    /// Job id.
    pub id: JobId,
    /// Nodes used.
    pub nodes: u32,
    /// Submit → start wait.
    pub wait_secs: f64,
    /// Actual execution time.
    pub run_secs: f64,
    /// Energy consumed by the job's nodes during execution, joules.
    pub energy_joules: f64,
    /// True when the job hit its walltime limit.
    pub killed_at_walltime: bool,
    /// True when the job was killed by the emergency policy.
    pub killed_by_emergency: bool,
    /// True when the job was killed by a node failure.
    pub killed_by_failure: bool,
    /// The node ids the job ran on.
    pub node_ids: Vec<u32>,
    /// Start time of the execution, seconds.
    pub start_secs: f64,
}

impl CompletedJob {
    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.u64(self.id.0);
        w.u32(self.nodes);
        w.f64(self.wait_secs);
        w.f64(self.run_secs);
        w.f64(self.energy_joules);
        w.bool(self.killed_at_walltime);
        w.bool(self.killed_by_emergency);
        w.bool(self.killed_by_failure);
        w.seq(&self.node_ids, |w, &n| w.u32(n));
        w.f64(self.start_secs);
    }

    fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CompletedJob {
            id: JobId(r.u64()?),
            nodes: r.u32()?,
            wait_secs: r.f64()?,
            run_secs: r.f64()?,
            energy_joules: r.f64()?,
            killed_at_walltime: r.bool()?,
            killed_by_emergency: r.bool()?,
            killed_by_failure: r.bool()?,
            node_ids: r.seq(SnapReader::u32)?,
            start_secs: r.f64()?,
        })
    }
}

/// Streaming completion accounting: every [`CompletedJob`] folds into
/// these as it finishes, in completion order, so the outcome's wait /
/// slowdown / kill statistics never need the retained record list. The
/// folds replicate the retained path bit-for-bit: `wait_sum` is the
/// same left-to-right f64 sum `Percentiles::summary` computes for its
/// mean, and `wait_max` the same max over non-negative samples.
#[derive(Debug, Clone, Copy, Default)]
struct CompletionAggregates {
    count: u64,
    wait_sum: f64,
    wait_max: f64,
    slowdown_sum: f64,
    walltime_kills: u64,
}

impl CompletionAggregates {
    fn fold(&mut self, c: &CompletedJob) {
        self.count += 1;
        self.wait_sum += c.wait_secs;
        self.wait_max = self.wait_max.max(c.wait_secs);
        let denom = c.run_secs.max(10.0);
        self.slowdown_sum += ((c.wait_secs + c.run_secs) / denom).max(1.0);
        self.walltime_kills += u64::from(c.killed_at_walltime);
    }

    fn mean_wait(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.wait_sum / self.count as f64
        }
    }

    fn mean_slowdown(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.slowdown_sum / self.count as f64
        }
    }

    fn snapshot_into(&self, w: &mut SnapWriter) {
        w.u64(self.count);
        w.f64(self.wait_sum);
        w.f64(self.wait_max);
        w.f64(self.slowdown_sum);
        w.u64(self.walltime_kills);
    }

    fn restore_from(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CompletionAggregates {
            count: r.u64()?,
            wait_sum: r.f64()?,
            wait_max: r.f64()?,
            slowdown_sum: r.f64()?,
            walltime_kills: r.u64()?,
        })
    }
}

/// Why a job left the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Departure {
    /// Ran to its natural end (or walltime limit).
    Normal,
    /// Killed by the emergency power response.
    Emergency,
    /// Killed by a node failure.
    Failure,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimOutcome {
    /// Policy name.
    pub policy: String,
    /// Jobs completed (including walltime kills).
    pub completed: u64,
    /// Jobs killed at their walltime limit.
    pub walltime_kills: u64,
    /// Jobs killed by emergency response.
    pub emergency_kills: u64,
    /// Jobs still queued or running at the horizon.
    pub unfinished: u64,
    /// Node utilization: busy node-seconds / (total nodes × span).
    pub utilization: f64,
    /// Mean wait time, seconds.
    pub mean_wait_secs: f64,
    /// Maximum wait time, seconds.
    pub max_wait_secs: f64,
    /// Mean bounded slowdown (bound 10 s).
    pub mean_bounded_slowdown: f64,
    /// Total IT energy over the run, joules.
    pub energy_joules: f64,
    /// Peak IT power, watts.
    pub peak_watts: f64,
    /// Average IT power, watts.
    pub avg_watts: f64,
    /// Seconds during which the configured budget was exceeded.
    pub budget_violation_secs: f64,
    /// Completed jobs per simulated day.
    pub throughput_per_day: f64,
    /// Energy per completed job, joules (∞-safe: 0 when none completed).
    pub energy_per_job_joules: f64,
    /// Total node-failure events (independent + correlated + fenced).
    pub node_failures: u64,
    /// Failure count per node, indexed by node id.
    pub per_node_failures: Vec<u64>,
    /// Total node-downtime seconds (completed repairs plus nodes still
    /// down at the horizon, accrued to the end of the run).
    pub node_downtime_secs: f64,
    /// Mean time to repair over completed repairs, seconds (0 when none).
    pub mttr_secs: f64,
    /// Jobs requeued after being killed (requires `requeue_killed`).
    pub requeues: u64,
    /// Telemetry staleness fallback transitions (flips into the
    /// conservative-estimate degraded mode).
    pub telemetry_fallbacks: u64,
    /// Nodes fenced after crossing the consecutive actuation-failure
    /// threshold.
    pub fenced_nodes: u64,
    /// Nodes still down (awaiting repair) when the run ended.
    pub nodes_down_at_end: u64,
    /// Per-job records.
    pub jobs: Vec<CompletedJob>,
    /// Engine counters (submissions, starts, boots, shutdowns, emergency
    /// events, …) for interaction analysis.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// System power trace sampled every 5 simulated minutes:
    /// `(seconds, watts)` rows for time-of-day analyses (E5's hot-hour
    /// peak, diurnal plots).
    pub power_trace: Vec<(f64, f64)>,
}

/// The scheduling policy, borrowed (the classic constructors) or owned
/// (the [`crate::env::PolicyEnv`] constructors, which need a `'static`
/// engine they can hold across decision steps).
enum PolicyHolder<'p> {
    Borrowed(&'p mut dyn Policy),
    Owned(Box<dyn Policy>),
}

impl PolicyHolder<'_> {
    fn name(&self) -> &str {
        match self {
            PolicyHolder::Borrowed(p) => p.name(),
            PolicyHolder::Owned(p) => p.name(),
        }
    }

    fn schedule(&mut self, view: &SchedView<'_>, queue: &[Job]) -> Vec<Decision> {
        match self {
            PolicyHolder::Borrowed(p) => p.schedule(view, queue),
            PolicyHolder::Owned(p) => p.schedule(view, queue),
        }
    }
}

/// A point-in-time reading of the cumulative quantities the environment
/// reward is computed from ([`ClusterSim::reward_probe`]). Differences
/// between two probes give the per-interval energy, slowdown mass,
/// violation time, and kill count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RewardProbe {
    /// Simulation time of the probe.
    pub t: SimTime,
    /// Cumulative system IT energy since t=0, joules.
    pub energy_joules: f64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Sum of bounded slowdowns over completed jobs (the outcome's
    /// `mean_bounded_slowdown × completed`).
    pub slowdown_sum: f64,
    /// Cumulative budget-violation seconds.
    pub violation_secs: f64,
    /// Jobs killed by emergency responses so far.
    pub emergency_kills: u64,
}

/// The simulation engine.
pub struct ClusterSim<'p> {
    config: EngineConfig,
    system: System,
    power_model: NodePowerModel,
    policy: PolicyHolder<'p>,
    predictor: Box<dyn PowerPredictor>,

    sim: Simulation<Ev>,
    allocator: Allocator,
    meter: EnergyMeter,
    budget: Option<PowerBudget>,
    queue: JobQueue,
    running: BTreeMap<JobId, RunningJob>,
    /// Power state per node, indexed by `NodeId::index()` (node ids are
    /// dense `0..total`).
    node_state: Vec<NodePowerState>,
    /// When each node last became idle (`None` while busy/off/booting),
    /// indexed by `NodeId::index()`.
    idle_since: Vec<Option<SimTime>>,
    /// Reverse index: which running job holds each node. Lets a node
    /// failure find its victim without scanning every running job.
    node_owner: Vec<Option<JobId>>,
    /// Count of nodes in `NodePowerState::Off`, maintained on every state
    /// transition so `try_schedule` does not rescan all nodes.
    off_count: u32,
    /// Count of nodes in `NodePowerState::Busy`, maintained the same way
    /// so per-event estimates never rescan summaries or node states.
    busy_count: u32,
    /// Running-job summaries kept sorted by `(estimated_end, id)` —
    /// exactly the order `SchedView` promises — and updated on job
    /// start/completion instead of rebuilt and re-sorted per decision.
    /// `granted_watts` is snapshotted at start: grant amounts are fixed
    /// for a grant's lifetime (the engine never calls `PowerBudget::
    /// adjust`), so the snapshot equals the live query.
    summaries: Vec<RunningSummary>,
    booting: u32,
    /// Pull-based arrival stream (materialized, lazy SWF, or lazy
    /// generator). Only one arrival is ever staged ahead of the clock.
    source: Box<dyn JobSource>,
    /// The arrival whose Submit event is in the queue, if any.
    pending_arrival: Option<Job>,
    /// Sequence number of the next staged Submit event (counts staged
    /// arrivals; always below [`RUNTIME_SEQ_BASE`]).
    arrival_seq: u64,
    /// Submit time of the last pulled arrival, for enforcing the
    /// [`JobSource`] non-decreasing-submit contract.
    last_arrival_submit: SimTime,
    /// No further arrival will be staged: the source is exhausted or
    /// yielded a past-horizon submit (all later ones are later still).
    arrivals_exhausted: bool,
    history: HistoryStore,
    metrics: MetricsRegistry,
    completed: Vec<CompletedJob>,
    /// Streaming completion statistics (kept in both retain modes; the
    /// only source of the outcome's wait/slowdown/kill numbers).
    agg: CompletionAggregates,
    /// Optional JSONL sink receiving one [`CompletedJob`] line per
    /// completion. Not part of snapshots: a resumed run re-attaches its
    /// own sink and re-emits only post-resume completions.
    completion_sink: Option<Box<dyn Write + Send>>,
    emergency_kills: u64,
    busy_node_seconds: f64,
    violation_accum_secs: f64,
    last_tick: SimTime,
    rng: epa_simcore::rng::SimRng,
    /// Failed (awaiting repair) flag per node, indexed by `NodeId::index()`.
    down: Vec<bool>,
    attempts: BTreeMap<JobId, u32>,
    /// No new starts before this instant (emergency cooldown).
    start_hold_until: SimTime,
    /// A cooldown is in effect; the first tick past it must reschedule.
    hold_resume_pending: bool,
    /// Pre-generated correlated failure-domain schedule (empty when the
    /// fault model has no domain component).
    fault_plan: FaultPlan,
    /// Online sensor-fault stream (present only with sensor faults).
    injector: Option<FaultInjector>,
    /// Unreliable-actuator front-end (present only with actuator faults).
    actuator: Option<RetryingActuator>,
    /// Audit log of every actuation attempt.
    actuator_log: ActuatorLog,
    /// Component-interaction ledger fed by the actuator log.
    ledger: InteractionLedger,
    /// Last accepted telemetry reading `(timestamp, watts)`; under sensor
    /// dropout the timestamp ages, under stuck-at it stays fresh while
    /// the value goes wrong.
    sensor_last: (SimTime, f64),
    /// Active stuck-at window `(until, held value)`, if any.
    sensor_stuck_until: Option<(SimTime, f64)>,
    /// Telemetry is currently past the staleness bound (for counting
    /// fallback transitions, not per-tick noise).
    telemetry_stale: bool,
    /// Failure events per node, indexed by `NodeId::index()`.
    failure_counts: Vec<u64>,
    /// When each currently-down node went down.
    down_since: Vec<Option<SimTime>>,
    /// Downtime seconds over *completed* repairs (MTTR numerator).
    repair_downtime_secs: f64,
    /// Completed repairs (MTTR denominator).
    repairs_completed: u64,
    /// Observability: trace bus, metrics registry, wall-clock profiler.
    /// Robustness counters (requeues, fallbacks, fences) live in its
    /// registry as the single source of truth and are folded into the
    /// outcome's counter map at finalize.
    obs: Obs,
    /// Per-cabinet shard queues for shard-local events (phase changes,
    /// shutdown completions), drained in conservative windows between
    /// global events. See [`crate::shards`].
    shards: ShardSet,
    /// Shard-local events applied so far; added to the global count so
    /// `sim/events_processed` matches the single-queue engine exactly.
    local_events: u64,
    /// The control plane's persistent knob state: what `Set*` control
    /// actions write and the engine consults (job limit, default DVFS
    /// frequency, backfill depth, shutdown override). Snapshot as its
    /// own section (schema v3).
    control: ControlState,
    /// Facility digital twin runtime state (present iff `config.grid`
    /// is). Advanced only at power-tick barriers and DR-window events;
    /// snapshot as its own section (schema v4).
    grid: Option<GridState>,
}

impl<'p> ClusterSim<'p> {
    /// Creates an engine over `system` running `jobs` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate; use [`Self::try_new`]
    /// to handle the error.
    pub fn new(
        system: System,
        jobs: Vec<Job>,
        policy: &'p mut dyn Policy,
        config: EngineConfig,
    ) -> Self {
        Self::try_new(system, jobs, policy, config).expect("invalid engine config")
    }

    /// Creates an engine, validating the configuration first. The job
    /// list is wrapped in a [`MaterializedSource`] — submit-time order
    /// with input order preserved among ties, exactly the order the
    /// event queue produced when every Submit was pre-scheduled.
    pub fn try_new(
        system: System,
        jobs: Vec<Job>,
        policy: &'p mut dyn Policy,
        config: EngineConfig,
    ) -> Result<Self, SchedError> {
        Self::try_new_with_source(
            system,
            Box::new(MaterializedSource::new(jobs)),
            policy,
            config,
        )
    }

    /// Creates an engine over a pull-based [`JobSource`]. Arrivals are
    /// staged one at a time — peak memory is flat in the job count —
    /// and a [`MaterializedSource`] reproduces [`ClusterSim::try_new`]
    /// byte-for-byte.
    pub fn try_new_with_source(
        system: System,
        source: Box<dyn JobSource>,
        policy: &'p mut dyn Policy,
        config: EngineConfig,
    ) -> Result<Self, SchedError> {
        Self::build(system, source, PolicyHolder::Borrowed(policy), config)
    }

    fn build(
        system: System,
        source: Box<dyn JobSource>,
        policy: PolicyHolder<'p>,
        config: EngineConfig,
    ) -> Result<Self, SchedError> {
        config.validate()?;
        let total = system.spec().total_nodes();
        let allocator = Allocator::new(total, config.alloc_strategy, system.topology().clone());
        let power_model = NodePowerModel::new(system.spec().node.clone());
        let budget = config
            .power_budget_watts
            .map(|w| PowerBudget::new(w).expect("positive budget"));
        let mut sim = Simulation::with_horizon(config.horizon);
        // Runtime events number from RUNTIME_SEQ_BASE; staged Submits
        // take 0, 1, 2, … so every (t, seq) tie resolves as if the
        // whole workload had been scheduled before this point.
        sim.queue_mut().set_seq(RUNTIME_SEQ_BASE);
        let mut source = source;
        let mut pending_arrival = None;
        let mut arrival_seq = 0u64;
        let mut arrivals_exhausted = false;
        let mut last_arrival_submit = SimTime::ZERO;
        match source.next_job() {
            Some(job) if job.submit <= config.horizon => {
                last_arrival_submit = job.submit;
                sim.queue_mut().push_with_seq(
                    job.submit,
                    arrival_seq,
                    Ev::Submit(arrival_seq as usize),
                );
                arrival_seq += 1;
                pending_arrival = Some(job);
            }
            _ => arrivals_exhausted = true,
        }
        sim.schedule_at(SimTime::ZERO, Ev::PowerTick);
        for &(t, w) in &config.budget_schedule {
            sim.schedule_at(t, Ev::BudgetResize(w));
        }
        // Grid DR windows ride the same global event queue — ordinary
        // barrier events, so shard/thread counts cannot reorder them.
        if let Some(g) = &config.grid {
            for (i, ev) in g.contract.events.iter().enumerate() {
                sim.schedule_at(ev.start, Ev::GridDrStart(i as u32));
                sim.schedule_at(ev.end, Ev::GridDrEnd(i as u32));
            }
        }
        let root_rng = epa_simcore::rng::SimRng::new(config.seed);
        // Cabinet-aligned shards: the requested count (config, then the
        // EPA_JSRM_SHARDS env, default 1) clamps to the cabinet count.
        let requested = config.shards.or_else(env_shards).unwrap_or(1);
        let shards = ShardSet::new(
            ShardTopology::cabinet_aligned(total, system.spec().nodes_per_cabinet, requested),
            &root_rng,
        );
        let mut rng = root_rng.stream("engine-failures");
        if let Some(mtbf) = config.node_mtbf {
            let first = rng.exponential(1.0 / mtbf.as_secs().max(1e-9));
            sim.schedule_at(SimTime::from_secs(first), Ev::NodeFail);
        }
        // Correlated failure domains: the whole schedule is a pure
        // function of the fault seed, pre-generated and pre-scheduled so
        // identical seeds replay identical rack/PDU events.
        let fault_plan = config.faults.as_ref().map_or_else(FaultPlan::default, |f| {
            FaultPlan::generate(f, config.horizon, system.spec().cabinets)
        });
        for (i, e) in fault_plan.domain_events.iter().enumerate() {
            sim.schedule_at(e.t, Ev::DomainFail(i as u32));
        }
        let injector = match &config.faults {
            Some(f) if f.sensor.is_some() => Some(
                FaultInjector::new(f.clone())
                    .map_err(|e| SchedError::InvalidConfig(e.to_string()))?,
            ),
            _ => None,
        };
        let actuator = config.faults.as_ref().and_then(|f| {
            f.actuator
                .as_ref()
                .map(|a| RetryingActuator::new(a.clone(), f.seed))
        });
        let mut meter = if config.bounded_power_trace {
            EnergyMeter::with_bounded_trace(power_trace_grid())
        } else {
            EnergyMeter::new()
        };
        let n_nodes = total as usize;
        let all_nodes: Vec<NodeId> = system.nodes().collect();
        meter.set_alloc_watts(&all_nodes, SimTime::ZERO, system.spec().node.idle_watts);
        let idle_system_watts = system.spec().idle_watts();
        let mut obs = Obs::new(&config.trace);
        obs.registry
            .register_histogram("sched/wait_secs", &WAIT_BUCKETS);
        obs.registry
            .register_histogram("sched/queue_depth", &QUEUE_DEPTH_BUCKETS);
        obs.registry
            .register_histogram("rm/actuation_delay_secs", &ACTUATION_DELAY_BUCKETS);
        obs.registry
            .register_histogram("telemetry/staleness_age_secs", &STALENESS_AGE_BUCKETS);
        let grid_state = config.grid.as_ref().map(GridState::new);
        Ok(ClusterSim {
            config,
            system,
            power_model,
            policy,
            predictor: Box::new(TagMeanPredictor),
            sim,
            allocator,
            meter,
            budget,
            queue: JobQueue::new(),
            running: BTreeMap::new(),
            node_state: vec![NodePowerState::Idle; n_nodes],
            idle_since: vec![Some(SimTime::ZERO); n_nodes],
            node_owner: vec![None; n_nodes],
            off_count: 0,
            busy_count: 0,
            summaries: Vec::new(),
            booting: 0,
            source,
            pending_arrival,
            arrival_seq,
            last_arrival_submit,
            arrivals_exhausted,
            history: HistoryStore::new(),
            metrics: MetricsRegistry::new(),
            completed: Vec::new(),
            agg: CompletionAggregates::default(),
            completion_sink: None,
            emergency_kills: 0,
            busy_node_seconds: 0.0,
            violation_accum_secs: 0.0,
            last_tick: SimTime::ZERO,
            rng,
            down: vec![false; n_nodes],
            attempts: BTreeMap::new(),
            start_hold_until: SimTime::ZERO,
            hold_resume_pending: false,
            fault_plan,
            injector,
            actuator,
            actuator_log: ActuatorLog::new(),
            ledger: InteractionLedger::new(),
            sensor_last: (SimTime::ZERO, idle_system_watts),
            sensor_stuck_until: None,
            telemetry_stale: false,
            failure_counts: vec![0; n_nodes],
            down_since: vec![None; n_nodes],
            repair_downtime_secs: 0.0,
            repairs_completed: 0,
            obs,
            shards,
            local_events: 0,
            control: ControlState::default(),
            grid: grid_state,
        })
    }

    /// Creates an engine that *owns* its policy, so the engine has no
    /// borrowed lifetime. This is the [`crate::env::PolicyEnv`]
    /// construction path: the environment holds the engine across
    /// decision steps, which a borrowed policy's lifetime would forbid.
    pub fn try_new_owned(
        system: System,
        jobs: Vec<Job>,
        policy: Box<dyn Policy>,
        config: EngineConfig,
    ) -> Result<ClusterSim<'static>, SchedError> {
        ClusterSim::build(
            system,
            Box::new(MaterializedSource::new(jobs)),
            PolicyHolder::Owned(policy),
            config,
        )
    }

    /// [`ClusterSim::resume`] with an owned policy — see
    /// [`ClusterSim::try_new_owned`].
    pub fn resume_owned(
        system: System,
        jobs: Vec<Job>,
        policy: Box<dyn Policy>,
        config: EngineConfig,
        snapshot: &Snapshot,
    ) -> Result<ClusterSim<'static>, SnapshotError> {
        let mut engine = ClusterSim::try_new_owned(system, jobs, policy, config).map_err(|e| {
            SnapshotError::ConfigMismatch {
                detail: format!("engine construction failed: {e}"),
            }
        })?;
        engine.restore_state(snapshot.as_bytes())?;
        Ok(engine)
    }

    /// Replaces the power predictor used for admission control.
    pub fn set_predictor(&mut self, p: Box<dyn PowerPredictor>) {
        self.predictor = p;
    }

    /// Attaches a JSONL completion sink: one serialized [`CompletedJob`]
    /// line per completion, written as jobs finish, so a streaming run
    /// (`retain_completed: false`) keeps full per-job output without
    /// retaining it. The sink is not part of snapshots — a resumed run
    /// re-attaches its own and receives only post-resume completions.
    pub fn set_completion_sink(&mut self, sink: Box<dyn Write + Send>) {
        self.completion_sink = Some(sink);
    }

    /// Access to the metrics registry (counters recorded during the run).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Access to the prediction history accumulated during the run.
    #[must_use]
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// The energy meter (power traces).
    #[must_use]
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The actuation audit log (every attempt, including failed retries).
    #[must_use]
    pub fn actuator_log(&self) -> &ActuatorLog {
        &self.actuator_log
    }

    /// The component-interaction ledger fed by actuations.
    #[must_use]
    pub fn interaction_ledger(&self) -> &InteractionLedger {
        &self.ledger
    }

    fn ambient_c(&self, t: SimTime) -> f64 {
        self.config
            .facility
            .as_ref()
            .map_or(18.0, |f| f.temperature_c(t))
    }

    /// Runs the simulation to completion and reports the outcome.
    pub fn run(self) -> SimOutcome {
        self.run_traced().0
    }

    /// Runs the simulation and additionally returns the observability
    /// bundle: the decision trace, the metrics registry, and the
    /// wall-clock profile. The [`SimOutcome`] is byte-identical to what
    /// [`ClusterSim::run`] returns for the same inputs regardless of the
    /// trace configuration.
    pub fn run_traced(mut self) -> (SimOutcome, ObsBundle) {
        while !self.step() {}
        self.finalize()
    }

    /// The settled facility-twin results at the current barrier: energy,
    /// cost at time-of-day prices, carbon, PUE, and DR penalties. `None`
    /// when the engine runs without a grid config — [`SimOutcome`] never
    /// carries grid fields, so grid-disabled outcomes stay byte-identical
    /// to the pre-grid engine.
    #[must_use]
    pub fn grid_summary(&self) -> Option<GridSummary> {
        match (&self.config.grid, &self.grid) {
            (Some(cfg), Some(state)) => Some(state.summary(cfg)),
            _ => None,
        }
    }

    /// Runs the simulation to completion and reports the outcome plus
    /// the grid settlement (when a grid config is present).
    pub fn run_with_grid(mut self) -> (SimOutcome, Option<GridSummary>) {
        while !self.step() {}
        let grid = self.grid_summary();
        (self.finalize().0, grid)
    }

    /// Advances the run by one window barrier: drains the conservative
    /// shard window before the next global event, then dispatches that
    /// event. Returns `true` when the run is over (global queue exhausted
    /// or the horizon reached) — and stays idempotent from then on, so
    /// callers may keep stepping safely. Every instant *between* two
    /// `step` calls is a barrier: no shard window is in flight, which is
    /// what makes it a legal snapshot point.
    fn step(&mut self) -> bool {
        // Conservative window: every shard-local event whose (t, seq)
        // key lies strictly before the next global event's key can be
        // applied without observing it. The ever-pending PowerTick
        // bounds the window at the telemetry interval.
        let bound = self.sim.peek_key();
        if self.drain_local_window(bound) {
            // A shard reached a past-horizon event; by key order the
            // pending global head (if any) is past the horizon too.
            let leftover = self.sim.next_event();
            debug_assert!(
                leftover.is_none(),
                "a pre-horizon global event cannot follow a past-horizon local one"
            );
            return true;
        }
        let Some((t, ev)) = self.sim.next_event() else {
            // Global queue exhausted or past the horizon. The window
            // drain already consumed every key before the global
            // head, so whatever remains in the shard queues is past
            // the horizon as well.
            debug_assert!(
                self.shards
                    .min_key()
                    .is_none_or(|(lt, _)| lt > self.config.horizon),
                "pre-horizon local events must drain before the run ends"
            );
            self.shards.clear();
            return true;
        };
        let t_dispatch = self.obs.profiler.start();
        match ev {
            Ev::Submit(_) => {
                let job = self
                    .pending_arrival
                    .take()
                    .expect("a Submit event implies a staged arrival");
                let (jid, jnodes) = (job.id.0, job.nodes);
                self.metrics.incr("jobs/submitted", 1);
                self.queue.push(job);
                self.stage_next_arrival();
                self.obs
                    .registry
                    .observe("sched/queue_depth", self.queue.len() as f64);
                if self.obs.bus.enabled(TraceCategory::Job) {
                    self.obs.bus.record(
                        t,
                        TraceEvent::JobSubmitted {
                            job: jid,
                            nodes: jnodes,
                            queue_depth: self.queue.len() as u64,
                        },
                    );
                }
                self.try_schedule();
            }
            Ev::Finish(id, attempt) => {
                self.finish_job(id, attempt, t);
                self.try_schedule();
            }
            Ev::PowerTick => {
                let t_meter = self.obs.profiler.start();
                self.on_power_tick(t);
                self.obs.profiler.stop(Scope::Meter, t_meter);
                // The tick after an emergency cooldown expires resumes
                // scheduling (a full heartbeat on *every* tick would be
                // quadratic with conservative backfilling's planning).
                if self.hold_resume_pending && t >= self.start_hold_until && !self.queue.is_empty()
                {
                    self.hold_resume_pending = false;
                    self.try_schedule();
                }
                let next = t + self.config.power_tick;
                if next <= self.config.horizon {
                    self.sim.schedule_at(next, Ev::PowerTick);
                }
            }
            Ev::BootDone(n) => {
                self.booting = self.booting.saturating_sub(1);
                self.set_node_state(n, NodePowerState::Idle, t);
                self.allocator.mark_available(n);
                self.idle_since[n.index()] = Some(t);
                self.try_schedule();
            }
            Ev::BudgetResize(w) => {
                // The demand-response schedule is an engineered adapter:
                // the resize flows through the unified apply path in both
                // control modes (the execute body is the old inline arm).
                let _ = self.apply_action(
                    t,
                    &ControlAction::ResizeBudget { watts: w },
                    ActionSource::Engineered,
                );
                self.try_schedule();
            }
            Ev::NodeFail => {
                self.on_node_fail(t);
                if let Some(mtbf) = self.config.node_mtbf {
                    let gap = self.rng.exponential(1.0 / mtbf.as_secs().max(1e-9));
                    let next = t + SimDuration::from_secs(gap);
                    if next <= self.config.horizon {
                        self.sim.schedule_at(next, Ev::NodeFail);
                    }
                }
            }
            Ev::RepairDone(n) => {
                if let Some(since) = self.down_since[n.index()].take() {
                    self.repair_downtime_secs += (t - since).as_secs();
                    self.repairs_completed += 1;
                    if self.obs.bus.enabled(TraceCategory::Fault) {
                        self.obs.bus.record(
                            t,
                            TraceEvent::NodeRepaired {
                                node: n.0,
                                down_secs: (t - since).as_secs(),
                            },
                        );
                    }
                }
                self.down[n.index()] = false;
                self.set_node_state(n, NodePowerState::Idle, t);
                self.allocator.mark_available(n);
                self.idle_since[n.index()] = Some(t);
                self.metrics.incr("rm/repairs", 1);
                self.try_schedule();
            }
            Ev::DomainFail(idx) => {
                let event = self.fault_plan.domain_events[idx as usize];
                self.metrics.incr("faults/domain_events", 1);
                // Only operational nodes go down; Off/Booting nodes
                // ride through (their state machines are elsewhere).
                for n in self.system.cabinet_nodes(event.domain) {
                    let i = n.index();
                    if matches!(
                        self.node_state[i],
                        NodePowerState::Idle | NodePowerState::Busy
                    ) && !self.down[i]
                    {
                        if self.obs.bus.enabled(TraceCategory::Fault) {
                            self.obs.bus.record(
                                t,
                                TraceEvent::NodeFailed {
                                    node: n.0,
                                    correlated: true,
                                },
                            );
                        }
                        self.take_node_down(n, t, event.repair_time);
                    }
                }
                self.try_schedule();
            }
            Ev::GridDrStart(idx) => {
                self.on_grid_dr_start(t, idx);
                self.try_schedule();
            }
            Ev::GridDrEnd(idx) => {
                self.on_grid_dr_end(t, idx);
                self.try_schedule();
            }
        }
        self.obs.profiler.stop(Scope::Dispatch, t_dispatch);
        false
    }

    /// A DR curtailment window opens: mark it active in the twin, drop
    /// the budget to the contractual target through the control plane,
    /// and — for enforced events — shed load immediately if the system
    /// is already drawing above the target.
    fn on_grid_dr_start(&mut self, t: SimTime, idx: u32) {
        let Some((target, enforce)) = self.config.grid.as_ref().and_then(|g| {
            g.event(idx)
                .map(|ev| (ev.target_watts(g.nominal_it_watts), ev.enforce))
        }) else {
            return;
        };
        if let Some(gs) = self.grid.as_mut() {
            gs.on_event_start(idx);
        }
        self.metrics.incr("grid/dr_events", 1);
        let _ = self.apply_action(
            t,
            &ControlAction::ResizeBudget { watts: target },
            ActionSource::Engineered,
        );
        if enforce {
            let observed = self.meter.system_watts();
            if observed > target {
                let _ = self.apply_action(
                    t,
                    &ControlAction::EmergencyShed {
                        observed_watts: observed,
                        limit_watts: target,
                        target_watts: target * 0.95,
                        victim_order: VictimOrder::Youngest,
                        cooldown: SimDuration::ZERO,
                    },
                    ActionSource::Engineered,
                );
            }
        }
    }

    /// A DR window closes: clear the active flag and restore the budget
    /// toward its nominal level (the next grid tick re-derates it for
    /// cooling/follow conditions).
    fn on_grid_dr_end(&mut self, t: SimTime, idx: u32) {
        let Some(nominal) = self.config.grid.as_ref().map(|g| g.nominal_it_watts) else {
            return;
        };
        if let Some(gs) = self.grid.as_mut() {
            gs.on_event_end(idx);
        }
        let temp = self.ambient_c(t);
        let target = match (&self.config.grid, &self.grid) {
            (Some(gcfg), Some(gs)) => gs.budget_target(gcfg, temp),
            _ => nominal,
        };
        let _ = self.apply_action(
            t,
            &ControlAction::ResizeBudget { watts: target },
            ActionSource::Engineered,
        );
    }

    /// The per-tick grid co-simulation step: settle cost/carbon/DR for
    /// the elapsed interval at the metered IT draw, then steer the IT
    /// budget to the twin's current target (cooling head-room ×
    /// follow-the-renewables derating × DR cap) when it moved.
    fn grid_tick(&mut self, t: SimTime, it_watts: f64) {
        if self.config.grid.is_none() {
            return;
        }
        let temp = self.ambient_c(t);
        let fallback_pue = self.config.facility.as_ref().map_or(1.0, |f| f.pue(t));
        let dt = (t - self.last_tick).as_secs();
        let (Some(gcfg), Some(gs)) = (self.config.grid.as_ref(), self.grid.as_mut()) else {
            return;
        };
        let target = gs.on_tick(gcfg, t, dt, it_watts, temp, fallback_pue);
        let current = self.budget.as_ref().map(PowerBudget::total_watts);
        if let Some(cur) = current {
            if (target - cur).abs() > 1e-6 {
                let _ = self.apply_action(
                    t,
                    &ControlAction::ResizeBudget { watts: target },
                    ActionSource::Engineered,
                );
                // A raised budget can admit queued work right now; a cut
                // only constrains future starts, so no reschedule needed.
                if target > cur {
                    self.try_schedule();
                }
            }
        }
    }

    /// Runs the simulation up to (at most) `until`, stopping at the first
    /// window barrier where the next global event lies past `until`, and
    /// returns a [`Snapshot`] of the full engine state at that barrier.
    ///
    /// Shard-local events before the next global event that have not been
    /// drained yet are captured *queued*, not applied — the resumed
    /// engine drains them in exactly the order the uninterrupted engine
    /// would have. If the run finishes before `until`, the snapshot
    /// captures the finished state (resuming it finalizes immediately
    /// with the identical outcome). Call repeatedly to checkpoint a run
    /// at several points, and [`ClusterSim::run`] /
    /// [`ClusterSim::run_traced`] to finish it.
    pub fn run_until(&mut self, until: SimTime) -> Snapshot {
        let _ = self.advance_until(until);
        self.snapshot()
    }

    /// Advances the run to the first window barrier at or past `until`
    /// without snapshotting — the [`crate::env::PolicyEnv`] stepping
    /// primitive (exactly [`ClusterSim::run_until`]'s loop). Returns
    /// `true` when the run is over (event queues exhausted or the horizon
    /// reached); finishing the engine with [`ClusterSim::run`] afterwards
    /// finalizes the outcome.
    pub fn advance_until(&mut self, until: SimTime) -> bool {
        loop {
            match self.sim.peek_key() {
                Some((t, _)) if t > until => return false,
                Some(_) => {
                    if self.step() {
                        return true;
                    }
                }
                None => {
                    // No global events left: one final step drains any
                    // remaining shard windows and ends the run.
                    let _ = self.step();
                    return true;
                }
            }
        }
    }

    /// The current simulation time (the last window barrier).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Fingerprint of everything the snapshot does *not* store but the
    /// resumed engine depends on: the outcome-affecting configuration,
    /// the workload, the policy name, and the machine shape. Stored in
    /// the snapshot and re-checked at resume so a mismatched resume fails
    /// with a typed error instead of silently diverging.
    fn fingerprint(&self) -> u64 {
        let c = &self.config;
        let mut fp = Fingerprint::new();
        fp.u64(c.seed);
        fp.f64(c.horizon.as_secs());
        fp.f64(c.power_tick.as_secs());
        match c.power_budget_watts {
            Some(w) => {
                fp.u64(1);
                fp.f64(w);
            }
            None => {
                fp.u64(0);
            }
        }
        fp.u64(c.budget_schedule.len() as u64);
        for &(t, w) in &c.budget_schedule {
            fp.f64(t.as_secs());
            fp.f64(w);
        }
        fp.u64(u64::from(c.requeue_killed));
        match c.checkpoint_interval {
            Some(d) => {
                fp.u64(1);
                fp.f64(d.as_secs());
            }
            None => {
                fp.u64(0);
            }
        }
        match c.node_mtbf {
            Some(d) => {
                fp.u64(1);
                fp.f64(d.as_secs());
            }
            None => {
                fp.u64(0);
            }
        }
        fp.f64(c.repair_time.as_secs());
        fp.u64(match c.alloc_strategy {
            AllocStrategy::FirstFit => 0,
            AllocStrategy::Contiguous => 1,
            AllocStrategy::TopologyAware => 2,
        });
        match &c.faults {
            Some(f) => {
                fp.u64(1);
                fp.u64(f.seed);
            }
            None => {
                fp.u64(0);
            }
        }
        fp.u64(u64::from(c.shutdown.is_some()));
        fp.u64(u64::from(c.emergency.is_some()));
        fp.u64(u64::from(c.limit_gate.is_some()));
        fp.u64(u64::from(c.facility.is_some()));
        fp.u64(u64::from(c.layout.is_some()));
        fp.u64(u64::from(c.record_history));
        fp.u64(u64::from(c.retain_completed));
        fp.u64(u64::from(c.bounded_power_trace));
        match &c.grid {
            Some(g) => {
                fp.u64(1);
                g.fingerprint(&mut fp);
            }
            None => {
                fp.u64(0);
            }
        }
        fp.str(self.policy.name());
        self.source.fingerprint(&mut fp);
        fp.u64(u64::from(self.system.spec().total_nodes()));
        fp.u64(u64::from(self.system.spec().cabinets));
        fp.finish()
    }

    /// Freezes the full engine state into a [`Snapshot`].
    ///
    /// Legal only at a window barrier — between [`ClusterSim::run_until`]
    /// calls, or before the run starts. Everything mutable is captured:
    /// the global event queue with its sequence counter, shard mailboxes
    /// and local clocks, RNG substream positions, allocator spans, meter
    /// accumulators and open allocation groups, the budget ledger, queued
    /// and running jobs, fault state, the prediction history, metrics,
    /// completed-job records, and the observability ring. Configuration
    /// is *not* stored (the caller re-supplies it at
    /// [`ClusterSim::resume`]); a fingerprint guards against mismatches.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut w = SnapWriter::new();
        w.section("meta");
        w.u64(self.fingerprint());
        w.u32(self.system.spec().total_nodes());
        w.f64(self.sim.now().as_secs());
        w.u64(self.sim.events_processed());
        w.section("sim");
        w.u64(self.sim.queue().seq());
        w.seq(&self.sim.queue().sorted_entries(), |w, &(t, seq, ev)| {
            w.f64(t.as_secs());
            w.u64(seq);
            ev.snapshot_into(w);
        });
        w.section("shards");
        self.shards.snapshot_into(&mut w);
        w.section("alloc");
        self.allocator.snapshot_into(&mut w);
        w.section("meter");
        self.meter.snapshot_into(&mut w);
        w.section("budget");
        w.opt(self.budget.as_ref(), |w, b| b.snapshot_into(w));
        w.section("queue");
        w.seq(self.queue.jobs(), |w, j| j.snapshot_into(w));
        w.section("running");
        let running: Vec<&RunningJob> = self.running.values().collect();
        w.seq(&running, |w, r| r.snapshot_into(w));
        w.section("nodes");
        w.seq(&self.node_state, |w, &s| w.u8(node_state_tag(s)));
        w.seq(&self.idle_since, |w, since| {
            w.opt(since.as_ref(), |w, t| w.f64(t.as_secs()));
        });
        w.seq(&self.down, |w, &d| w.bool(d));
        w.seq(&self.failure_counts, |w, &c| w.u64(c));
        w.seq(&self.down_since, |w, since| {
            w.opt(since.as_ref(), |w, t| w.f64(t.as_secs()));
        });
        w.section("engine");
        w.u64(self.emergency_kills);
        w.f64(self.busy_node_seconds);
        w.f64(self.violation_accum_secs);
        w.f64(self.last_tick.as_secs());
        let (seed, pos) = self.rng.snapshot_state();
        w.u64(seed);
        w.u64(pos);
        let attempts: Vec<(JobId, u32)> = self.attempts.iter().map(|(&k, &v)| (k, v)).collect();
        w.seq(&attempts, |w, &(id, a)| {
            w.u64(id.0);
            w.u32(a);
        });
        w.f64(self.start_hold_until.as_secs());
        w.bool(self.hold_resume_pending);
        w.f64(self.sensor_last.0.as_secs());
        w.f64(self.sensor_last.1);
        w.opt(self.sensor_stuck_until.as_ref(), |w, &(until, held)| {
            w.f64(until.as_secs());
            w.f64(held);
        });
        w.bool(self.telemetry_stale);
        w.f64(self.repair_downtime_secs);
        w.u64(self.repairs_completed);
        w.u64(self.local_events);
        w.section("control");
        self.control.snapshot_into(&mut w);
        w.section("faults");
        w.opt(self.injector.as_ref(), |w, i| i.snapshot_into(w));
        w.opt(self.actuator.as_ref(), |w, a| a.snapshot_into(w));
        self.actuator_log.snapshot_into(&mut w);
        self.ledger.snapshot_into(&mut w);
        w.section("history");
        self.history.snapshot_into(&mut w);
        w.section("metrics");
        self.metrics.snapshot_into(&mut w);
        w.section("completed");
        w.seq(&self.completed, |w, c| c.snapshot_into(w));
        w.section("arrivals");
        w.u64(self.arrival_seq);
        w.bool(self.arrivals_exhausted);
        w.f64(self.last_arrival_submit.as_secs());
        w.opt(self.pending_arrival.as_ref(), |w, j| j.snapshot_into(w));
        self.agg.snapshot_into(&mut w);
        self.source.snapshot_cursor(&mut w);
        w.section("obs");
        self.obs.snapshot_into(&mut w);
        w.section("grid");
        w.opt(self.grid.as_ref(), |w, g| g.snapshot_into(w));
        Snapshot::from_bytes(w.finish(SNAPSHOT_SCHEMA_VERSION))
    }

    /// Rebuilds an engine from a [`Snapshot`], validating schema version,
    /// checksum, topology (node count, shard layout), and the config
    /// fingerprint before touching any state. On success the engine is
    /// indistinguishable from the one that took the snapshot: finishing
    /// the run produces a byte-identical [`SimOutcome`] and decision
    /// trace.
    ///
    /// The caller re-supplies `system`, `jobs`, `policy`, and `config`
    /// exactly as given to the original [`ClusterSim::try_new`] — they
    /// are configuration, not state, and a disagreement is rejected as
    /// [`SnapshotError::ConfigMismatch`] / [`SnapshotError::TopologyMismatch`].
    /// A non-default predictor ([`ClusterSim::set_predictor`]) must be
    /// re-set after resume; built-in policies keep no cross-call state.
    /// The thread count may change across the boundary; the shard count
    /// (`config.shards` / `EPA_JSRM_SHARDS`) must match the snapshot's.
    pub fn resume(
        system: System,
        jobs: Vec<Job>,
        policy: &'p mut dyn Policy,
        config: EngineConfig,
        snapshot: &Snapshot,
    ) -> Result<Self, SnapshotError> {
        Self::resume_with_source(
            system,
            Box::new(MaterializedSource::new(jobs)),
            policy,
            config,
            snapshot,
        )
    }

    /// [`ClusterSim::resume`] for an engine built over a pull-based
    /// source ([`ClusterSim::try_new_with_source`]): the caller supplies
    /// a *fresh* source over the same workload (same trace, same
    /// generator parameters — checked via the fingerprint) and the
    /// cursor is restored to the snapshot's read position.
    pub fn resume_with_source(
        system: System,
        source: Box<dyn JobSource>,
        policy: &'p mut dyn Policy,
        config: EngineConfig,
        snapshot: &Snapshot,
    ) -> Result<Self, SnapshotError> {
        let mut engine =
            Self::try_new_with_source(system, source, policy, config).map_err(|e| {
                SnapshotError::ConfigMismatch {
                    detail: format!("engine construction failed: {e}"),
                }
            })?;
        engine.restore_state(snapshot.as_bytes())?;
        Ok(engine)
    }

    /// Overwrites this freshly-constructed engine's state from snapshot
    /// bytes. Pure-config-derived state (fault plan, predictor, power
    /// model) keeps the `try_new` values; everything mutable is replaced;
    /// derived structures (node-owner index, state tallies, running
    /// summaries) are rebuilt from the restored primaries.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let n = self.system.spec().total_nodes() as usize;
        let mut r = SnapReader::open(bytes, SNAPSHOT_SCHEMA_VERSION)?;
        r.section("meta")?;
        let fp = r.u64()?;
        if fp != self.fingerprint() {
            return Err(SnapshotError::ConfigMismatch {
                detail: format!(
                    "snapshot fingerprint {fp:#018x} does not match the supplied \
                     config/workload/policy/system (expected {:#018x})",
                    self.fingerprint()
                ),
            });
        }
        let total = r.u32()?;
        if total as usize != n {
            return Err(SnapshotError::TopologyMismatch {
                detail: format!("snapshot has {total} nodes, system has {n}"),
            });
        }
        let now = SimTime::from_secs(r.f64()?);
        let processed = r.u64()?;
        r.section("sim")?;
        let queue_seq = r.u64()?;
        let entries = r.seq(|r| {
            let t = SimTime::from_secs(r.f64()?);
            let seq = r.u64()?;
            let ev = Ev::restore_from(r)?;
            Ok((t, seq, ev))
        })?;
        self.sim.queue_mut().clear();
        for (t, seq, ev) in entries {
            self.sim.queue_mut().push_with_seq(t, seq, ev);
        }
        self.sim.queue_mut().set_seq(queue_seq);
        self.sim.restore_clock(now, processed);
        r.section("shards")?;
        self.shards = ShardSet::restore_from(&mut r, self.shards.topo().clone())?;
        r.section("alloc")?;
        self.allocator = Allocator::restore_from(
            &mut r,
            self.config.alloc_strategy,
            self.system.topology().clone(),
        )?;
        r.section("meter")?;
        self.meter = EnergyMeter::restore_from(&mut r)?;
        r.section("budget")?;
        let budget = r.opt(PowerBudget::restore_from)?;
        if budget.is_some() != self.budget.is_some() {
            return Err(SnapshotError::ConfigMismatch {
                detail: "snapshot and config disagree about the power budget".to_owned(),
            });
        }
        self.budget = budget;
        r.section("queue")?;
        let queued = r.seq(Job::restore_from)?;
        self.queue = JobQueue::new();
        for job in queued {
            self.queue.push(job);
        }
        r.section("running")?;
        let running = r.seq(RunningJob::restore_from)?;
        self.running = running.into_iter().map(|rj| (rj.job.id, rj)).collect();
        r.section("nodes")?;
        let node_state = r.seq(|r| node_state_from_tag(r.u8()?))?;
        let idle_since = r.seq(|r| r.opt(|r| Ok(SimTime::from_secs(r.f64()?))))?;
        let down = r.seq(SnapReader::bool)?;
        let failure_counts = r.seq(SnapReader::u64)?;
        let down_since = r.seq(|r| r.opt(|r| Ok(SimTime::from_secs(r.f64()?))))?;
        for (name, len) in [
            ("node_state", node_state.len()),
            ("idle_since", idle_since.len()),
            ("down", down.len()),
            ("failure_counts", failure_counts.len()),
            ("down_since", down_since.len()),
        ] {
            if len != n {
                return Err(SnapshotError::Corrupt {
                    detail: format!("{name} has {len} entries for a {n}-node system"),
                });
            }
        }
        self.node_state = node_state;
        self.idle_since = idle_since;
        self.down = down;
        self.failure_counts = failure_counts;
        self.down_since = down_since;
        r.section("engine")?;
        self.emergency_kills = r.u64()?;
        self.busy_node_seconds = r.f64()?;
        self.violation_accum_secs = r.f64()?;
        self.last_tick = SimTime::from_secs(r.f64()?);
        let (seed, pos) = (r.u64()?, r.u64()?);
        self.rng = epa_simcore::rng::SimRng::from_state(seed, pos);
        let attempts = r.seq(|r| Ok((JobId(r.u64()?), r.u32()?)))?;
        self.attempts = attempts.into_iter().collect();
        self.start_hold_until = SimTime::from_secs(r.f64()?);
        self.hold_resume_pending = r.bool()?;
        self.sensor_last = (SimTime::from_secs(r.f64()?), r.f64()?);
        self.sensor_stuck_until = r.opt(|r| Ok((SimTime::from_secs(r.f64()?), r.f64()?)))?;
        self.telemetry_stale = r.bool()?;
        self.repair_downtime_secs = r.f64()?;
        self.repairs_completed = r.u64()?;
        self.local_events = r.u64()?;
        r.section("control")?;
        self.control = ControlState::restore_from(&mut r)?;
        r.section("faults")?;
        let fault_cfg = self.config.faults.clone();
        self.injector = r.opt(|r| {
            let cfg = fault_cfg
                .clone()
                .ok_or_else(|| SnapshotError::ConfigMismatch {
                    detail: "snapshot has a fault injector but the config has no fault model"
                        .to_owned(),
                })?;
            FaultInjector::restore_from(r, cfg)
        })?;
        self.actuator = r.opt(|r| {
            let cfg = fault_cfg
                .as_ref()
                .and_then(|f| f.actuator.clone())
                .ok_or_else(|| SnapshotError::ConfigMismatch {
                    detail: "snapshot has actuator-fault state but the config has no \
                             actuator fault model"
                        .to_owned(),
                })?;
            RetryingActuator::restore_from(r, cfg)
        })?;
        self.actuator_log = ActuatorLog::restore_from(&mut r)?;
        self.ledger = InteractionLedger::restore_from(&mut r)?;
        r.section("history")?;
        self.history = HistoryStore::restore_from(&mut r)?;
        r.section("metrics")?;
        self.metrics = MetricsRegistry::restore_from(&mut r)?;
        r.section("completed")?;
        self.completed = r.seq(CompletedJob::restore_from)?;
        r.section("arrivals")?;
        self.arrival_seq = r.u64()?;
        self.arrivals_exhausted = r.bool()?;
        self.last_arrival_submit = SimTime::from_secs(r.f64()?);
        self.pending_arrival = r.opt(Job::restore_from)?;
        self.agg = CompletionAggregates::restore_from(&mut r)?;
        // try_new already pulled the first arrival from the fresh
        // source; cursor restore is written to tolerate that (absolute
        // for materialized/generator sources, replay-from-current for
        // the SWF stream).
        self.source.restore_cursor(&mut r)?;
        r.section("obs")?;
        self.obs = Obs::restore_from(&mut r, self.config.trace.profile)?;
        r.section("grid")?;
        let grid_cfg = &self.config.grid;
        let grid = r.opt(|r| {
            let cfg = grid_cfg
                .as_ref()
                .ok_or_else(|| SnapshotError::ConfigMismatch {
                    detail: "snapshot has grid state but the config has no grid model".to_owned(),
                })?;
            GridState::restore_from(r, cfg)
        })?;
        if grid.is_some() != self.config.grid.is_some() {
            return Err(SnapshotError::ConfigMismatch {
                detail: "snapshot and config disagree about the grid model".to_owned(),
            });
        }
        self.grid = grid;
        r.finish()?;

        // Rebuild derived structures from the restored primaries.
        self.node_owner = vec![None; n];
        for (&id, rj) in &self.running {
            for &node in &rj.nodes {
                let i = node.index();
                if i >= n || self.node_owner[i].is_some() {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("running job {} claims invalid node {}", id.0, node.0),
                    });
                }
                self.node_owner[i] = Some(id);
            }
        }
        self.off_count = 0;
        self.busy_count = 0;
        self.booting = 0;
        for s in &self.node_state {
            match s {
                NodePowerState::Off => self.off_count += 1,
                NodePowerState::Busy => self.busy_count += 1,
                NodePowerState::Booting => self.booting += 1,
                NodePowerState::Idle => {}
            }
        }
        self.summaries = self
            .running
            .values()
            .map(|rj| RunningSummary {
                id: rj.job.id,
                nodes: rj.nodes.len() as u32,
                estimated_end: rj.estimated_end,
                watts: rj.watts_per_node * rj.nodes.len() as f64,
                granted_watts: rj
                    .grant
                    .and_then(|g| self.budget.as_ref().and_then(|b| b.grant_watts(g))),
            })
            .collect();
        self.summaries
            .sort_unstable_by_key(|s| (s.estimated_end, s.id));
        Ok(())
    }

    /// Drains every shard-local event with key strictly before `bound`
    /// (all pending events when `None`), applying their effects in merged
    /// `(t, seq)` order — the exact interleaving, and the exact
    /// floating-point fold order, a single-queue engine would produce.
    ///
    /// Returns `true` when a past-horizon event was reached, which ends
    /// the run (mirroring the single-queue engine's stop-at-first-event-
    /// beyond-the-horizon semantics).
    fn drain_local_window(&mut self, bound: Option<EventKey>) -> bool {
        if self.shards.pending() == 0 {
            return false;
        }
        debug_assert!(
            self.shards.invariants_hold(&self.allocator),
            "shard invariants violated before window drain"
        );
        let t_drain = self.obs.profiler.start();
        let (windows, hit_horizon) = self.shards.pop_window(bound, self.config.horizon);
        // Resolve each shard's window independently. Resolution reads
        // only barrier state (attempts, running) that local effects never
        // mutate, so neither shard order nor parallelism can matter.
        let attempts = &self.attempts;
        let running = &self.running;
        let resolve = |(_, window): &(u32, ShardWindow)| {
            window
                .iter()
                .map(|&(t, seq, ev)| (t, seq, resolve_local(attempts, running, ev)))
                .collect::<Vec<_>>()
        };
        let total: usize = windows.iter().map(|(_, w)| w.len()).sum();
        let resolved: Vec<Vec<(SimTime, u64, LocalEffect)>> =
            if total >= PAR_RESOLVE_MIN && rayon::current_num_threads() > 1 {
                use rayon::prelude::*;
                windows.par_iter().map(resolve).collect()
            } else {
                windows.iter().map(resolve).collect()
            };
        let mut effects: Vec<(SimTime, u64, LocalEffect)> =
            resolved.into_iter().flatten().collect();
        effects.sort_unstable_by_key(|&(t, seq, _)| (t, seq));
        for (t, _seq, eff) in effects {
            match eff {
                LocalEffect::SetGroupWatts { gid, watts } => {
                    self.meter.set_group_watts(gid, t, watts);
                    self.metrics.incr("jobs/phase_changes", 1);
                }
                LocalEffect::NodeOff(n) => self.set_node_state(n, NodePowerState::Off, t),
                LocalEffect::Skip => {}
            }
            self.local_events += 1;
        }
        self.obs.profiler.stop(Scope::ShardDrain, t_drain);
        hit_horizon
    }

    /// Fails one uniformly-chosen operational node: the job running on it
    /// (if any) is killed, the node goes down and is repaired after the
    /// configured repair time.
    fn on_node_fail(&mut self, t: SimTime) {
        // Ascending node-id order, matching the old sorted-map scan, so the
        // RNG draw sequence (and thus every seeded run) is unchanged.
        let operational: Vec<NodeId> = self
            .node_state
            .iter()
            .enumerate()
            .filter(|&(i, s)| {
                matches!(s, NodePowerState::Idle | NodePowerState::Busy) && !self.down[i]
            })
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        if operational.is_empty() {
            return;
        }
        let victim = *self.rng.choose(&operational);
        if self.obs.bus.enabled(TraceCategory::Fault) {
            self.obs.bus.record(
                t,
                TraceEvent::NodeFailed {
                    node: victim.0,
                    correlated: false,
                },
            );
        }
        self.take_node_down(victim, t, self.config.repair_time);
        self.try_schedule();
    }

    /// Takes one operational node down: kill its job (if any), drain it
    /// from the allocator, power it off, and schedule the repair. Shared
    /// by independent failures, correlated domain events, and actuator
    /// fencing — the operation order is load-bearing for determinism.
    fn take_node_down(&mut self, victim: NodeId, t: SimTime, repair: SimDuration) {
        self.metrics.incr("rm/failures", 1);
        self.failure_counts[victim.index()] += 1;
        // Kill the job occupying the node, if any (O(1) reverse lookup).
        if let Some(id) = self.node_owner[victim.index()] {
            let r = self.running.remove(&id).expect("holder is running");
            self.complete(r, t, Departure::Failure);
        }
        // Take the node down (it is free/idle now).
        self.allocator.mark_unavailable(victim);
        self.idle_since[victim.index()] = None;
        self.down[victim.index()] = true;
        self.down_since[victim.index()] = Some(t);
        self.set_node_state(victim, NodePowerState::Off, t);
        self.sim.schedule_in(repair, Ev::RepairDone(victim));
    }

    /// Transitions a node's recorded power state, keeping the `off_count`
    /// and `busy_count` tallies consistent. Does not touch the meter.
    fn set_state(&mut self, node: NodeId, state: NodePowerState) {
        let old = std::mem::replace(&mut self.node_state[node.index()], state);
        match old {
            NodePowerState::Off => self.off_count -= 1,
            NodePowerState::Busy => self.busy_count -= 1,
            _ => {}
        }
        match state {
            NodePowerState::Off => self.off_count += 1,
            NodePowerState::Busy => self.busy_count += 1,
            _ => {}
        }
    }

    /// Count of nodes in `NodePowerState::Idle`, derived arithmetically
    /// from the maintained tallies (every node is exactly one of
    /// idle/busy/off/booting). Cross-checked against a scan in debug.
    fn idle_count(&self) -> u32 {
        let idle = self
            .system
            .spec()
            .total_nodes()
            .saturating_sub(self.busy_count + self.off_count + self.booting);
        debug_assert_eq!(
            idle,
            self.node_state
                .iter()
                .filter(|s| matches!(s, NodePowerState::Idle))
                .count() as u32,
            "idle tally must match the node-state scan"
        );
        idle
    }

    fn set_node_state(&mut self, node: NodeId, state: NodePowerState, t: SimTime) {
        self.set_state(node, state);
        let watts = self
            .power_model
            .watts(state, 0.0, self.system.spec().node.cpu.base_freq_ghz);
        self.meter.set_node_watts(node, t, watts);
    }

    /// Inserts a summary at its sorted position. The `(estimated_end, id)`
    /// key reproduces the old rebuild exactly: a stable sort by
    /// `estimated_end` over jobs iterated in id order ties by id.
    fn summary_insert(&mut self, s: RunningSummary) {
        let key = (s.estimated_end, s.id);
        let pos = self
            .summaries
            .partition_point(|x| (x.estimated_end, x.id) < key);
        self.summaries.insert(pos, s);
    }

    /// Removes the summary for `id` (binary search on its sort key).
    fn summary_remove(&mut self, id: JobId, estimated_end: SimTime) {
        let pos = self
            .summaries
            .partition_point(|x| (x.estimated_end, x.id) < (estimated_end, id));
        debug_assert!(
            self.summaries.get(pos).is_some_and(|s| s.id == id),
            "summary for {id:?} must exist at its sort position"
        );
        self.summaries.remove(pos);
    }

    /// Conservative static power estimate used while telemetry is stale:
    /// busy nodes at nameplate peak, every other powered node at idle,
    /// plus the configured safety margin. Deliberately pessimistic — the
    /// degraded mode must never under-estimate draw.
    fn conservative_estimate(&self, cfg: &SensorFaultConfig) -> f64 {
        let node = &self.system.spec().node;
        let busy = self.busy_count;
        debug_assert_eq!(
            busy,
            self.summaries.iter().map(|s| s.nodes).sum::<u32>(),
            "busy tally must match the running-summary scan"
        );
        let on_others = self
            .system
            .spec()
            .total_nodes()
            .saturating_sub(self.off_count + busy);
        (f64::from(busy) * node.peak_watts + f64::from(on_others) * node.idle_watts)
            * (1.0 + cfg.safety_margin_frac)
    }

    /// Advances the sensor model one tick and returns the *observed*
    /// system draw: the live reading, a held stuck-at value, or — once
    /// the last reading's age exceeds the staleness bound — the
    /// conservative fallback estimate. Without sensor faults this is the
    /// true meter value with zero extra state or RNG draws.
    fn sample_telemetry(&mut self, t: SimTime, true_watts: f64) -> f64 {
        let Some(cfg) = self
            .injector
            .as_ref()
            .and_then(|i| i.sensor_config().cloned())
        else {
            return true_watts;
        };
        // Stuck-at window: the sensor keeps re-reporting its held value
        // with fresh timestamps — wrong data that staleness cannot catch.
        if let Some((until, held)) = self.sensor_stuck_until {
            if t < until {
                self.sensor_last = (t, held);
            } else {
                self.sensor_stuck_until = None;
            }
        }
        if self.sensor_stuck_until.is_none() {
            match self
                .injector
                .as_mut()
                .expect("sensor faults on")
                .sensor_sample()
            {
                SensorSample::Ok => self.sensor_last = (t, true_watts),
                SensorSample::Dropout => {
                    // The sample is lost; the last reading ages.
                    self.metrics.incr("faults/telemetry_dropouts", 1);
                    if self.obs.bus.enabled(TraceCategory::Telemetry) {
                        self.obs.bus.record(t, TraceEvent::SensorDropout);
                    }
                }
                SensorSample::Stuck => {
                    let held = self.sensor_last.1;
                    self.sensor_stuck_until = Some((t + cfg.stuck_duration, held));
                    self.sensor_last = (t, held);
                    self.metrics.incr("faults/telemetry_stuck", 1);
                    if self.obs.bus.enabled(TraceCategory::Telemetry) {
                        self.obs
                            .bus
                            .record(t, TraceEvent::SensorStuck { held_watts: held });
                    }
                }
            }
        }
        let age = t.saturating_since(self.sensor_last.0);
        if age > cfg.staleness_bound {
            if !self.telemetry_stale {
                self.telemetry_stale = true;
                self.obs.registry.incr("faults/telemetry_fallbacks", 1);
                if self.obs.bus.enabled(TraceCategory::Telemetry) {
                    self.obs.bus.record(
                        t,
                        TraceEvent::TelemetryFallback {
                            engaged: true,
                            age_secs: age.as_secs(),
                        },
                    );
                }
            }
            self.metrics.incr("faults/telemetry_stale_ticks", 1);
            self.obs
                .registry
                .observe("telemetry/staleness_age_secs", age.as_secs());
            self.conservative_estimate(&cfg)
        } else {
            if self.telemetry_stale && self.obs.bus.enabled(TraceCategory::Telemetry) {
                self.obs.bus.record(
                    t,
                    TraceEvent::TelemetryFallback {
                        engaged: false,
                        age_secs: age.as_secs(),
                    },
                );
            }
            self.telemetry_stale = false;
            self.sensor_last.1
        }
    }

    /// The observed system draw at `now` without advancing the sensor
    /// model (scheduling decisions between ticks read this). Returns the
    /// value and whether telemetry is currently stale.
    fn observed_system_watts(&self, now: SimTime) -> (f64, bool) {
        let Some(cfg) = self.injector.as_ref().and_then(|i| i.sensor_config()) else {
            return (self.meter.system_watts(), false);
        };
        let age = now.saturating_since(self.sensor_last.0);
        if age > cfg.staleness_bound {
            (self.conservative_estimate(cfg), true)
        } else {
            (self.sensor_last.1, false)
        }
    }

    /// Applies one control action through the unified apply path — the
    /// single funnel every knob goes through, whether an engineered
    /// adapter or an external (learned) controller pulled it.
    ///
    /// External actions are validated first (an invalid one is counted,
    /// traced as rejected, and ignored) and recorded on the `Control`
    /// trace category; engineered actions skip both so an engineered run
    /// stays byte-identical to the pre-refactor engine even with tracing
    /// on. Returns `true` when the action was applied (for `Start`, when
    /// the job actually started).
    fn apply_action(&mut self, t: SimTime, action: &ControlAction, src: ActionSource) -> bool {
        if src == ActionSource::External && !self.validate_action(action) {
            self.obs.registry.incr("control/actions_rejected", 1);
            self.trace_control(t, action, false);
            return false;
        }
        let applied = self.execute_action(t, action);
        if src == ActionSource::External {
            if applied {
                self.obs.registry.incr("control/actions_applied", 1);
            } else {
                self.obs.registry.incr("control/actions_rejected", 1);
            }
            self.trace_control(t, action, applied);
        }
        applied
    }

    /// Records an external control action on the trace (mask-gated).
    fn trace_control(&mut self, t: SimTime, action: &ControlAction, accepted: bool) {
        if self.obs.bus.enabled(TraceCategory::Control) {
            self.obs.bus.record(
                t,
                TraceEvent::ControlAction {
                    kind: action.kind(),
                    value: action.trace_value(),
                    accepted,
                },
            );
        }
    }

    /// Sanity bounds for *external* actions. Engineered adapters emit
    /// well-formed actions by construction and skip this; a learned
    /// controller's action must never corrupt engine state, so anything
    /// non-physical is rejected here before execution.
    fn validate_action(&self, action: &ControlAction) -> bool {
        match action {
            // Start is validated by the start path itself (unknown job,
            // insufficient nodes, budget denial all reject cleanly).
            ControlAction::Start { .. } => true,
            ControlAction::SetJobLimit { limit } => limit.is_none_or(|l| l >= 1),
            ControlAction::SetDefaultFrequency { freq_ghz } => {
                freq_ghz.is_none_or(|f| f.is_finite() && f > 0.0)
            }
            ControlAction::SetBackfillDepth { depth } => depth.is_none_or(|d| d >= 1),
            ControlAction::ResizeBudget { watts } => {
                self.budget.is_some() && watts.is_finite() && *watts > 0.0
            }
            ControlAction::SetIdleShutdown { policy } => policy.as_ref().is_none_or(|p| {
                p.idle_threshold.as_secs() >= 0.0
                    && p.shutdown_time.as_secs() > 0.0
                    && p.boot_time.as_secs() > 0.0
            }),
            ControlAction::PowerOffIdle {
                idle_threshold,
                shutdown_time,
                ..
            } => idle_threshold.as_secs() >= 0.0 && shutdown_time.as_secs() > 0.0,
            ControlAction::EmergencyShed {
                target_watts,
                limit_watts,
                ..
            } => target_watts.is_finite() && *target_watts >= 0.0 && target_watts <= limit_watts,
        }
    }

    /// Executes a (validated) control action. Returns `true` when it took
    /// effect (`Start` reports whether the job started).
    fn execute_action(&mut self, t: SimTime, action: &ControlAction) -> bool {
        match action {
            ControlAction::Start {
                job,
                nodes_override,
                freq_ghz,
                node_cap_watts,
            } => self.start_job(*job, *nodes_override, *freq_ghz, *node_cap_watts),
            ControlAction::SetJobLimit { limit } => {
                self.control.job_limit = *limit;
                true
            }
            ControlAction::SetDefaultFrequency { freq_ghz } => {
                // Quantize at set time so every start sees a legal
                // operating point without re-quantizing.
                self.control.default_freq_ghz =
                    freq_ghz.map(|f| self.power_model.dvfs().cpu().quantize_frequency(f));
                true
            }
            ControlAction::SetBackfillDepth { depth } => {
                self.control.backfill_depth = *depth;
                true
            }
            ControlAction::ResizeBudget { watts } => {
                if let Some(budget) = self.budget.as_mut() {
                    if budget.resize_traced(*watts, t, &mut self.obs.bus).is_ok() {
                        self.metrics.incr("power/budget_resizes", 1);
                    }
                }
                true
            }
            ControlAction::SetIdleShutdown { policy } => {
                self.control.shutdown_override = Some(policy.clone());
                true
            }
            ControlAction::PowerOffIdle {
                idle_threshold,
                min_idle_reserve,
                shutdown_time,
            } => {
                self.power_off_idle(t, *idle_threshold, *min_idle_reserve, *shutdown_time);
                true
            }
            ControlAction::EmergencyShed {
                observed_watts,
                limit_watts,
                target_watts,
                victim_order,
                cooldown,
            } => {
                self.emergency_shed(
                    t,
                    *observed_watts,
                    *limit_watts,
                    *target_watts,
                    *victim_order,
                    *cooldown,
                );
                true
            }
        }
    }

    /// Applies a batch of external (learned-controller) actions at the
    /// current barrier, in order, and returns how many were accepted.
    /// Each action is validated, counted, and recorded on the `Control`
    /// trace category.
    pub fn apply_external_actions(&mut self, actions: &[ControlAction]) -> u32 {
        let now = self.sim.now();
        let mut applied = 0;
        for action in actions {
            if self.apply_action(now, action, ActionSource::External) {
                applied += 1;
            }
        }
        applied
    }

    /// A fixed-interval observation for an external controller: queue
    /// pressure, fleet state, power posture, and fault state, read from
    /// the engine's existing bookkeeping without mutating anything.
    #[must_use]
    pub fn control_observation(&self) -> Observation {
        let now = self.sim.now();
        let (system_watts, stale) = self.observed_system_watts(now);
        let (wait_p50_secs, wait_p90_secs) = self
            .obs
            .registry
            .histogram("sched/wait_secs")
            .map_or((0.0, 0.0), |h| (h.quantile(0.5), h.quantile(0.9)));
        Observation {
            t: now,
            queue_depth: self.queue.len() as u64,
            queued_node_demand: self.queue.jobs().iter().map(|j| u64::from(j.nodes)).sum(),
            wait_p50_secs,
            wait_p90_secs,
            free_nodes: self.allocator.free_count() as u32,
            off_nodes: self.off_count,
            down_nodes: self.down.iter().filter(|&&d| d).count() as u32,
            booting_nodes: self.booting,
            total_nodes: self.system.spec().total_nodes(),
            running_jobs: self.running.len() as u64,
            system_watts,
            budget_watts: self
                .budget
                .as_ref()
                .map_or(f64::INFINITY, PowerBudget::total_watts),
            headroom_watts: self
                .budget
                .as_ref()
                .map_or(f64::INFINITY, PowerBudget::headroom_watts),
            temperature_c: self.ambient_c(now),
            telemetry_stale: stale,
            emergency_armed: self
                .config
                .emergency
                .as_ref()
                .is_some_and(|em| em.armed_at(now)),
            start_hold: now < self.start_hold_until,
            price_per_mwh: self.grid.as_ref().map_or(0.0, GridState::price),
            carbon_g_per_kwh: self.grid.as_ref().map_or(0.0, GridState::carbon),
            dr_active: self.grid.as_ref().is_some_and(GridState::dr_active),
            pue: match &self.grid {
                Some(g) => g.pue(),
                None => self.config.facility.as_ref().map_or(1.0, |f| f.pue(now)),
            },
        }
    }

    /// Reads the cumulative reward inputs at the current barrier. The
    /// environment differences two probes to get per-interval energy,
    /// slowdown mass, and violation time.
    #[must_use]
    pub fn reward_probe(&self) -> RewardProbe {
        let now = self.sim.now();
        RewardProbe {
            t: now,
            energy_joules: self.meter.system_energy_joules(SimTime::ZERO, now),
            completed: self.agg.count,
            slowdown_sum: self.agg.slowdown_sum,
            violation_secs: self.violation_accum_secs,
            emergency_kills: self.emergency_kills,
        }
    }

    /// The idle-shutdown policy in effect: the control-plane override
    /// when one is set (`Some(None)` disables shutdown entirely), else
    /// the configured policy.
    fn effective_shutdown(&self) -> Option<&ShutdownPolicy> {
        match &self.control.shutdown_override {
            Some(o) => o.as_ref(),
            None => self.config.shutdown.as_ref(),
        }
    }

    /// Concurrency admission under the current mode: the legacy path
    /// asks the gate inline (the pre-refactor shape); the adapter path
    /// consults the control plane's job-limit knob, which
    /// [`ClusterSim::refresh_gate_limit`] re-derives from the gate each
    /// scheduling round. Within a round the two are equivalent — ambient
    /// temperature cannot change between events.
    fn admits_start(&self) -> bool {
        match self.config.control_mode {
            ControlMode::DirectLegacy => match &self.config.limit_gate {
                Some(gate) => gate.admits(self.running.len(), self.ambient_c(self.sim.now())),
                None => true,
            },
            ControlMode::Adapters => self
                .control
                .job_limit
                .is_none_or(|l| self.running.len() < l),
        }
    }

    /// Gate adapter: re-derives the temperature-conditioned concurrency
    /// cap and writes it through the control plane (adapter mode only).
    fn refresh_gate_limit(&mut self) {
        if self.config.control_mode != ControlMode::Adapters {
            return;
        }
        let now = self.sim.now();
        let limit = match &self.config.limit_gate {
            Some(gate) => gate.limit_at(self.ambient_c(now)),
            None => return,
        };
        let _ = self.apply_action(
            now,
            &ControlAction::SetJobLimit { limit: Some(limit) },
            ActionSource::Engineered,
        );
    }

    /// Sheds running jobs until the projected draw falls to
    /// `target_watts`, then holds new starts for `cooldown`. The shared
    /// body of the emergency response in both control modes — its
    /// operation order is load-bearing for byte determinism.
    fn emergency_shed(
        &mut self,
        t: SimTime,
        observed: f64,
        limit_watts: f64,
        target_watts: f64,
        victim_order: VictimOrder,
        cooldown: SimDuration,
    ) {
        self.metrics.incr("emergency/breaches", 1);
        if self.obs.bus.enabled(TraceCategory::Emergency) {
            self.obs.bus.record(
                t,
                TraceEvent::EmergencyBreach {
                    observed_watts: observed,
                    limit_watts,
                },
            );
        }
        let mut excess = observed - target_watts;
        // Victim ordering per policy: youngest-first (least sunk cost)
        // or most-powerful-first (fewest kills per watt).
        let mut victims: Vec<JobId> = self.running.keys().copied().collect();
        match victim_order {
            VictimOrder::Youngest => {
                victims.sort_by_key(|id| {
                    std::cmp::Reverse(self.running[id].start.as_secs().to_bits())
                });
            }
            VictimOrder::MostPowerful => {
                victims.sort_by_key(|id| {
                    let r = &self.running[id];
                    std::cmp::Reverse(((r.watts_per_node * r.nodes.len() as f64) * 1e3) as u64)
                });
            }
        }
        for id in victims {
            if excess <= 0.0 {
                break;
            }
            let r = self.running.remove(&id).expect("victim is running");
            let shed = r.watts_per_node * r.nodes.len() as f64;
            excess -= shed;
            self.emergency_kills += 1;
            self.metrics.incr("emergency/kills", 1);
            if self.obs.bus.enabled(TraceCategory::Emergency) {
                self.obs.bus.record(
                    t,
                    TraceEvent::EmergencyKill {
                        job: id.0,
                        shed_watts: shed,
                    },
                );
            }
            self.complete(r, t, Departure::Emergency);
        }
        self.start_hold_until = t + cooldown;
        self.hold_resume_pending = !cooldown.is_zero();
        self.try_schedule();
    }

    /// Powers off idle nodes under the given aggressiveness knobs. The
    /// shared body of the idle-shutdown scan in both control modes.
    fn power_off_idle(
        &mut self,
        t: SimTime,
        idle_threshold: SimDuration,
        min_idle_reserve: u32,
        shutdown_time: SimDuration,
    ) {
        let now = t;
        // Keep a reserve of idle nodes for responsiveness. The O(1)
        // tally gates the candidate scan entirely: on the common tick
        // (nothing shuttable) no per-node work runs.
        let can_shut = self.idle_count().saturating_sub(min_idle_reserve);
        if can_shut == 0 {
            return;
        }
        let candidates: Vec<NodeId> = self
            .idle_since
            .iter()
            .enumerate()
            .filter_map(|(i, since)| since.map(|s| (i, s)))
            .filter(|&(i, since)| {
                matches!(self.node_state[i], NodePowerState::Idle)
                    && (now - since) >= idle_threshold
            })
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        for n in candidates.into_iter().take(can_shut as usize) {
            if self.allocator.mark_unavailable(n) {
                self.idle_since[n.index()] = None;
                self.metrics.incr("rm/shutdowns", 1);
                // Shutdown takes effect after a short drain; completion
                // is shard-local to the node.
                let seq = self.sim.alloc_seq();
                self.shards.post(
                    self.shards.topo().shard_of(n),
                    t + shutdown_time,
                    seq,
                    LocalEv::ShutdownDone(n),
                );
            }
        }
    }

    fn try_schedule(&mut self) {
        let t_sched = self.obs.profiler.start();
        self.try_schedule_inner();
        self.obs.profiler.stop(Scope::Schedule, t_sched);
    }

    fn try_schedule_inner(&mut self) {
        // Emergency cooldown: after a response, hold new starts.
        if self.sim.now() < self.start_hold_until {
            return;
        }
        // The gate may cap how many jobs can run concurrently. Adapter
        // mode refreshes the control plane's job-limit knob from the
        // gate each round, then checks the knob; the legacy path asks
        // the gate inline. Ambient temperature is constant within a
        // round, so the two are equivalent.
        self.refresh_gate_limit();
        if !self.admits_start() {
            return;
        }
        let now = self.sim.now();
        let headroom = self
            .budget
            .as_ref()
            .map_or(f64::INFINITY, PowerBudget::headroom_watts);
        let budget_total = self
            .budget
            .as_ref()
            .map_or(f64::INFINITY, PowerBudget::total_watts);
        // Graceful degradation: past the staleness bound the scheduler
        // sees the conservative estimate, and per-job prediction falls
        // back to nameplate peak plus the safety margin.
        let (observed_watts, stale) = self.observed_system_watts(now);
        let decisions = {
            // Build the prediction closure over immutable parts.
            let predictor = &self.predictor;
            let history = &self.history;
            let ambient = self.ambient_c(now);
            let nominal = self.system.spec().node.nominal_watts;
            let peak = self.system.spec().node.peak_watts;
            let margin = self
                .injector
                .as_ref()
                .and_then(|i| i.sensor_config())
                .map_or(0.0, |c| c.safety_margin_frac);
            let predict = move |job: &Job| {
                if stale {
                    peak * (1.0 + margin)
                } else {
                    predictor
                        .predict_watts_per_node(job, history, ambient)
                        .unwrap_or(nominal)
                }
            };
            let view = SchedView {
                now,
                free_nodes: self.allocator.free_count() as u32,
                off_nodes: self.off_count,
                total_nodes: self.system.spec().total_nodes(),
                running: &self.summaries,
                power_headroom_watts: headroom,
                power_budget_watts: budget_total,
                system_watts: observed_watts,
                temperature_c: self.ambient_c(now),
                dvfs: self.power_model.dvfs(),
                predicted_watts_per_node: &predict,
            };
            // Backfill-depth knob: cap how far into the queue the policy
            // may look. `None` hands the policy the full queue, the
            // pre-refactor behaviour.
            let queue = self.queue.jobs();
            let queue = match self.config.control_mode {
                ControlMode::Adapters => match self.control.backfill_depth {
                    Some(d) => &queue[..queue.len().min(d as usize)],
                    None => queue,
                },
                ControlMode::DirectLegacy => queue,
            };
            self.policy.schedule(&view, queue)
        };
        let mut started_any = false;
        for d in decisions {
            // The concurrency gate bounds *each* start, not just round
            // entry — one scheduling round may otherwise blow through the
            // limit with a batch of starts.
            if !self.admits_start() {
                break;
            }
            match d {
                Decision::Start {
                    job,
                    nodes_override,
                    freq_ghz,
                    node_cap_watts,
                } => {
                    let started = match self.config.control_mode {
                        ControlMode::Adapters => self.apply_action(
                            now,
                            &ControlAction::Start {
                                job,
                                nodes_override,
                                freq_ghz,
                                node_cap_watts,
                            },
                            ActionSource::Engineered,
                        ),
                        ControlMode::DirectLegacy => {
                            self.start_job(job, nodes_override, freq_ghz, node_cap_watts)
                        }
                    };
                    if started {
                        started_any = true;
                        if stale {
                            self.metrics.incr("faults/conservative_admissions", 1);
                        }
                    }
                }
            }
        }
        // Demand-driven boot: if queued work cannot fit in free+busy nodes
        // but off nodes would help, boot them.
        self.boot_for_demand();
        if started_any {
            self.metrics.incr("sched/rounds_with_starts", 1);
        }
    }

    fn boot_for_demand(&mut self) {
        let Some(sd) = self.effective_shutdown().cloned() else {
            return;
        };
        let Some(head) = self.queue.head() else {
            return;
        };
        let free = self.allocator.free_count() as u32;
        let need = head.nodes.saturating_sub(free + self.booting);
        if need == 0 || self.off_count == 0 {
            return;
        }
        // Down nodes are Off too, but they belong to the repair state
        // machine: booting one would bring it up with a RepairDone still
        // pending and its downtime accounting live.
        let off: Vec<NodeId> = self
            .node_state
            .iter()
            .enumerate()
            .filter(|&(i, s)| matches!(s, NodePowerState::Off) && !self.down[i])
            .map(|(i, _)| NodeId(i as u32))
            .take(need as usize)
            .collect();
        let now = self.sim.now();
        for n in off {
            self.set_node_state(n, NodePowerState::Booting, now);
            self.booting += 1;
            self.metrics.incr("rm/boots", 1);
            self.sim.schedule_in(sd.boot_time, Ev::BootDone(n));
        }
    }

    /// Records a start rejection on the trace (mask-gated, no-op when
    /// scheduler tracing is off).
    fn trace_reject(&mut self, id: JobId, reason: RejectReason) {
        if self.obs.bus.enabled(TraceCategory::Sched) {
            self.obs.bus.record(
                self.sim.now(),
                TraceEvent::StartRejected { job: id.0, reason },
            );
        }
    }

    fn start_job(
        &mut self,
        id: JobId,
        nodes_override: Option<u32>,
        freq_ghz: Option<f64>,
        node_cap_watts: Option<f64>,
    ) -> bool {
        // The control plane's default-frequency knob applies to any start
        // without an explicit frequency request. Engineered runs never
        // set it, so the default path is untouched.
        let freq_ghz = freq_ghz.or(self.control.default_freq_ghz);
        // A start for a job that is not at the head of the queue is a
        // backfill decision (recorded on the trace, not used otherwise).
        let backfilled = self.queue.head().is_some_and(|h| h.id != id);
        let Some(job) = self.queue.remove(id) else {
            self.metrics.incr("sched/start_unknown_job", 1);
            self.trace_reject(id, RejectReason::UnknownJob);
            return false;
        };
        let now = self.sim.now();
        // Moldable override.
        let mut nodes_requested = job.nodes;
        let mut base_runtime = job.base_runtime;
        if let (Some(n), Some(m)) = (nodes_override, job.moldable.as_ref()) {
            let n = n.clamp(m.min_nodes, m.max_nodes);
            base_runtime = m.runtime_on(n, job.nodes, job.base_runtime);
            nodes_requested = n;
        }
        if nodes_requested > self.allocator.free_count() as u32 {
            self.queue.push(job);
            self.metrics.incr("sched/start_insufficient_nodes", 1);
            self.trace_reject(id, RejectReason::InsufficientNodes);
            return false;
        }

        // Operating point: frequency request then hardware cap.
        let spec_base = self.system.spec().node.cpu.base_freq_ghz;
        let demand_freq = freq_ghz.unwrap_or(spec_base);
        let beta = job.app.mean_cpu_boundness();
        let util = job.app.mean_utilization();
        let op = match node_cap_watts {
            Some(cap) => self.power_model.apply_cap(cap, demand_freq, beta),
            None => {
                // Quantize only explicit requests; the default (base) is a
                // legal operating point on every CPU.
                let f = match freq_ghz {
                    Some(req) => self.power_model.dvfs().cpu().quantize_frequency(req),
                    None => spec_base,
                };
                epa_power::node_power::CappedOperatingPoint {
                    freq_ghz: f,
                    watts: self.power_model.dvfs().busy_watts(f),
                    slowdown: self.power_model.dvfs().slowdown(f, beta),
                }
            }
        };
        // Actual per-node draw scales with utilization.
        let idle = self.system.spec().node.idle_watts;
        let mut op = op;
        let mut watts_per_node = idle + util * (op.watts - idle);

        // Budget admission (engine-enforced). A job whose demand exceeds
        // the *total* budget can never start as requested — production
        // sites cap such jobs instead of starving the queue (KAUST's
        // static CAPMC caps, Trinity's admin caps), so the engine programs
        // a per-node ceiling that makes the job fit and retries.
        let mut capped_to_fit = false;
        let grant = if let Some(budget) = self.budget.as_mut() {
            let mut need = watts_per_node * f64::from(nodes_requested);
            if need > budget.total_watts() {
                let per_node_ceiling = budget.total_watts() / f64::from(nodes_requested);
                // Cap the *busy* draw such that the utilization-weighted
                // draw stays under the ceiling.
                let busy_cap = if util > 0.0 {
                    idle + (per_node_ceiling - idle) / util
                } else {
                    per_node_ceiling
                };
                let capped = self.power_model.apply_cap(busy_cap, op.freq_ghz, beta);
                let capped_wpn = idle + util * (capped.watts - idle);
                if capped_wpn * f64::from(nodes_requested) <= budget.total_watts() + 1e-9 {
                    op = capped;
                    watts_per_node = capped_wpn;
                    need = capped_wpn * f64::from(nodes_requested);
                    capped_to_fit = true;
                    self.metrics.incr("sched/start_capped_to_fit", 1);
                }
            }
            let gid = GrantId(job.id.0);
            match budget.request_traced(gid, need, now, &mut self.obs.bus) {
                Ok(()) => Some(gid),
                Err(_) => {
                    self.queue.push(job);
                    self.metrics.incr("sched/start_power_denied", 1);
                    self.trace_reject(id, RejectReason::PowerDenied);
                    return false;
                }
            }
        } else {
            None
        };

        // Allocation, avoiding maintenance-affected nodes when layout-aware.
        let est_run = SimDuration::from_secs(job.walltime_estimate.as_secs() * op.slowdown);
        let affected: Vec<NodeId> = if let Some(layout) = &self.config.layout {
            layout.affected_nodes(&self.system, now, now + est_run)
        } else {
            Vec::new()
        };
        for &n in &affected {
            self.allocator.mark_unavailable(n);
        }
        let t_alloc = self.obs.profiler.start();
        let alloc_result = self.allocator.allocate(nodes_requested);
        self.obs.profiler.stop(Scope::Allocator, t_alloc);
        for &n in &affected {
            self.allocator.mark_available(n);
        }
        let nodes = match alloc_result {
            Ok(nodes) => nodes,
            Err(_) => {
                if let (Some(budget), Some(g)) = (self.budget.as_mut(), grant) {
                    let _ = budget.release_traced(g, now, &mut self.obs.bus);
                }
                self.queue.push(job);
                self.metrics.incr("sched/start_alloc_failed", 1);
                self.trace_reject(id, RejectReason::AllocFailed);
                return false;
            }
        };

        // Program the operating point through the (possibly unreliable)
        // actuator when the start needs a cap or frequency write. On
        // failure the start is rolled back, the job requeued, and any
        // node past the consecutive-failure threshold is fenced; on
        // success the accumulated retry backoff delays the job.
        let mut actuation_delay = SimDuration::ZERO;
        if node_cap_watts.is_some() || freq_ghz.is_some() || capped_to_fit {
            if let Some(act) = self.actuator.as_mut() {
                let report = act.program_caps_traced(
                    now,
                    &nodes,
                    Some(op.watts),
                    &mut self.actuator_log,
                    &mut self.ledger,
                    &mut self.obs.bus,
                );
                self.metrics
                    .incr("faults/actuator_attempts", report.attempts);
                if report.succeeded {
                    actuation_delay = report.total_delay;
                    self.obs
                        .registry
                        .observe("rm/actuation_delay_secs", report.total_delay.as_secs());
                } else {
                    self.metrics.incr("faults/actuator_cap_failures", 1);
                    self.metrics.incr("sched/start_actuation_failed", 1);
                    self.allocator.release(&nodes);
                    if let (Some(budget), Some(g)) = (self.budget.as_mut(), grant) {
                        let _ = budget.release_traced(g, now, &mut self.obs.bus);
                    }
                    for n in report.fence {
                        self.obs.registry.incr("faults/fenced_nodes", 1);
                        self.take_node_down(n, now, self.config.repair_time);
                    }
                    self.queue.push(job);
                    self.trace_reject(id, RejectReason::ActuationFailed);
                    return false;
                }
            }
        }

        // Physical runtime under the operating point, clipped by walltime.
        let slowdown_fn = {
            let dvfs = self.power_model.dvfs().clone();
            let f = op.freq_ghz;
            move |beta: f64| dvfs.slowdown(f, beta)
        };
        let true_run = {
            let mut j = job.clone();
            j.base_runtime = base_runtime;
            j.runtime_under(slowdown_fn)
        } + actuation_delay;
        let killed = true_run > job.walltime_estimate;
        let run = if killed {
            job.walltime_estimate
        } else {
            true_run
        };
        let end = now + run;
        let estimated_end = now + job.walltime_estimate;

        // Phase-resolved power: the job draws a different wattage in each
        // phase (utilization differs), producing the intra-job power
        // fluctuations the survey's introduction motivates. Phase k lasts
        // base × wₖ × slowdown(f, βₖ) and draws idle + utilₖ·(busy − idle).
        let idle_w = self.system.spec().node.idle_watts;
        let phases = job.normalized_phases();
        let phase_watts: Vec<f64> = phases
            .iter()
            .map(|p| idle_w + p.utilization.clamp(0.0, 1.0) * (op.watts - idle_w))
            .collect();
        let dvfs = self.power_model.dvfs();
        let phase_ends: Vec<SimTime> = {
            let mut acc = 0.0;
            phases
                .iter()
                .map(|p| {
                    acc += base_runtime.as_secs()
                        * p.weight
                        * dvfs.slowdown(op.freq_ghz, p.cpu_boundness);
                    now + SimDuration::from_secs(acc)
                })
                .collect()
        };

        let first_watts = phase_watts.first().copied().unwrap_or(watts_per_node);
        // Bulk Idle→Busy: allocated nodes are free, and free nodes are
        // idle by construction, so the tallies move once per batch.
        for &n in &nodes {
            let i = n.index();
            debug_assert!(
                matches!(self.node_state[i], NodePowerState::Idle),
                "allocated node must be idle"
            );
            self.node_state[i] = NodePowerState::Busy;
            self.idle_since[i] = None;
            self.node_owner[i] = Some(job.id);
        }
        self.busy_count += nodes.len() as u32;
        // One allocation group per running job: phase changes retarget
        // the whole allocation in O(1), and closing the group at job end
        // yields the job's energy directly.
        let (meter_group, _mark) = self.meter.open_group(&nodes, now, first_watts);
        self.metrics.incr("jobs/started", 1);
        let wait_secs = (now - job.submit).as_secs();
        // The diagnostic registry's exact-percentile distribution keeps
        // every sample; in streaming mode (per-job records off) waits
        // fold into CompletionAggregates only, so engine memory stays
        // flat in the job count. Nothing in SimOutcome reads this
        // distribution — skipping it changes no outcome byte. The
        // fixed-bucket obs histogram below is O(1) and always on.
        if self.config.retain_completed {
            self.metrics.observe("sched/wait_secs", wait_secs);
        }
        self.obs.registry.observe("sched/wait_secs", wait_secs);
        if self.obs.bus.enabled(TraceCategory::Job) {
            self.obs.bus.record(
                now,
                TraceEvent::JobStarted {
                    job: job.id.0,
                    nodes: nodes.len() as u32,
                    watts_per_node,
                    wait_secs,
                    backfilled,
                    capped_to_fit,
                },
            );
        }
        let attempt = {
            let a = self.attempts.entry(job.id).or_insert(0);
            *a += 1;
            *a
        };
        self.sim.schedule_at(end, Ev::Finish(job.id, attempt));
        // Stage the phase transitions that occur before the job ends in
        // the owning shard's mailbox. A job's nodes may span shards; the
        // first node's shard owns its events (any fixed rule works — the
        // handler touches only the job's meter group, and the shared seq
        // numbering makes the merged order routing-independent).
        let home = self.shards.topo().shard_of(nodes[0]);
        for (k, &t_k) in phase_ends.iter().enumerate() {
            let next = k + 1;
            if next < phase_watts.len() && t_k < end {
                let seq = self.sim.alloc_seq();
                self.shards
                    .post(home, t_k, seq, LocalEv::PhaseChange(job.id, attempt, next));
            }
        }
        self.summary_insert(RunningSummary {
            id: job.id,
            nodes: nodes.len() as u32,
            estimated_end,
            watts: watts_per_node * nodes.len() as f64,
            granted_watts: grant.and_then(|g| self.budget.as_ref().and_then(|b| b.grant_watts(g))),
        });
        self.running.insert(
            job.id,
            RunningJob {
                job,
                nodes,
                start: now,
                estimated_end,
                watts_per_node,
                killed_at_walltime: killed,
                grant,
                base_effective: base_runtime,
                true_run_secs: true_run.as_secs(),
                phase_watts,
                meter_group,
            },
        );
        true
    }

    /// Pulls the next arrival from the source and schedules its Submit
    /// event. Arrivals past the horizon end the stream (the source
    /// contract guarantees all later ones are past it too), so an
    /// unbounded generator never runs ahead of the horizon.
    fn stage_next_arrival(&mut self) {
        debug_assert!(
            self.pending_arrival.is_none(),
            "one staged arrival at a time"
        );
        if self.arrivals_exhausted {
            return;
        }
        let Some(job) = self.source.next_job() else {
            self.arrivals_exhausted = true;
            return;
        };
        assert!(
            job.submit >= self.last_arrival_submit,
            "JobSource must yield non-decreasing submit times ({} after {})",
            job.submit,
            self.last_arrival_submit,
        );
        self.last_arrival_submit = job.submit;
        if job.submit > self.config.horizon {
            self.arrivals_exhausted = true;
            return;
        }
        let seq = self.arrival_seq;
        self.arrival_seq += 1;
        self.sim
            .queue_mut()
            .push_with_seq(job.submit, seq, Ev::Submit(seq as usize));
        self.pending_arrival = Some(job);
    }

    fn finish_job(&mut self, id: JobId, attempt: u32, t: SimTime) {
        // A stale Finish (the attempt was killed, possibly requeued and
        // restarted) must not touch the current attempt.
        if self.attempts.get(&id).copied() != Some(attempt) {
            return;
        }
        let Some(r) = self.running.remove(&id) else {
            return; // already killed by emergency or failure
        };
        self.complete(r, t, Departure::Normal);
    }

    fn complete(&mut self, r: RunningJob, t: SimTime, departure: Departure) {
        self.summary_remove(r.job.id, r.estimated_end);
        let run_secs = (t - r.start).as_secs();
        self.busy_node_seconds += run_secs * r.nodes.len() as f64;
        // Bulk Busy→Idle: a running job's nodes are all busy, so the
        // tallies move once per batch.
        for &n in &r.nodes {
            let i = n.index();
            debug_assert!(
                matches!(self.node_state[i], NodePowerState::Busy),
                "running job's node must be busy"
            );
            self.node_state[i] = NodePowerState::Idle;
            self.idle_since[i] = Some(t);
            self.node_owner[i] = None;
        }
        self.busy_count -= r.nodes.len() as u32;
        let idle_watts = self.power_model.watts(
            NodePowerState::Idle,
            0.0,
            self.system.spec().node.cpu.base_freq_ghz,
        );
        // Closing the group folds the job's accumulated energy (shared by
        // every member node), resets the nodes to idle draw, and returns
        // the job's total energy — no per-node mark/diff needed.
        let energy = self
            .meter
            .close_group(r.meter_group, &r.nodes, t, idle_watts);
        self.allocator.release(&r.nodes);
        if self.obs.bus.enabled(TraceCategory::Job) {
            let event = match departure {
                Departure::Normal if r.killed_at_walltime => TraceEvent::JobKilled {
                    job: r.job.id.0,
                    reason: KillReason::Walltime,
                    run_secs,
                },
                Departure::Normal => TraceEvent::JobFinished {
                    job: r.job.id.0,
                    run_secs,
                    energy_joules: energy,
                },
                Departure::Emergency => TraceEvent::JobKilled {
                    job: r.job.id.0,
                    reason: KillReason::Emergency,
                    run_secs,
                },
                Departure::Failure => TraceEvent::JobKilled {
                    job: r.job.id.0,
                    reason: KillReason::Failure,
                    run_secs,
                },
            };
            self.obs.bus.record(t, event);
        }
        if let (Some(budget), Some(g)) = (self.budget.as_mut(), r.grant) {
            let _ = budget.release_traced(g, t, &mut self.obs.bus);
        }
        if self.config.record_history && run_secs > 0.0 {
            let wpn = energy / run_secs / r.nodes.len() as f64;
            self.history
                .record_job(&r.job, run_secs, wpn, self.ambient_c(t));
        }
        self.metrics.incr("jobs/completed", 1);
        if r.killed_at_walltime {
            self.metrics.incr("jobs/walltime_kills", 1);
        }
        let record = CompletedJob {
            id: r.job.id,
            nodes: r.nodes.len() as u32,
            wait_secs: (r.start - r.job.submit).as_secs(),
            run_secs,
            energy_joules: energy,
            killed_at_walltime: r.killed_at_walltime && departure == Departure::Normal,
            killed_by_emergency: departure == Departure::Emergency,
            killed_by_failure: departure == Departure::Failure,
            node_ids: r.nodes.iter().map(|n| n.0).collect(),
            start_secs: r.start.as_secs(),
        };
        self.agg.fold(&record);
        if let Some(sink) = self.completion_sink.as_mut() {
            let line = serde_json::to_string(&record).expect("CompletedJob serializes");
            let _ = writeln!(sink, "{line}");
        }
        if self.config.retain_completed {
            self.completed.push(record);
        }
        // The attempt-table entry exists to invalidate stale Finish and
        // PhaseChange events, whose guards treat a missing entry and a
        // mismatched one identically — so once the job can never restart
        // (normal end, or killed with requeueing off) the entry can go,
        // keeping the table bounded by live jobs on streaming runs.
        if departure == Departure::Normal || !self.config.requeue_killed {
            self.attempts.remove(&r.job.id);
        }
        // Requeue killed work (Tokyo Tech: avoid *losing* jobs to power
        // actions). With checkpointing the continuation resumes from the
        // last checkpoint; without it, from the beginning.
        if departure != Departure::Normal && self.config.requeue_killed {
            let frac = if r.true_run_secs > 0.0 {
                (run_secs / r.true_run_secs).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let base_done = r.base_effective.as_secs() * frac;
            let saved = match self.config.checkpoint_interval {
                Some(ckpt) if !ckpt.is_zero() => {
                    (base_done / ckpt.as_secs()).floor() * ckpt.as_secs()
                }
                _ => 0.0,
            };
            let remaining = (r.base_effective.as_secs() - saved).max(1.0);
            let mut continuation = r.job.clone();
            continuation.base_runtime = SimDuration::from_secs(remaining);
            continuation.nodes = r.nodes.len() as u32;
            continuation.moldable = None; // the continuation is rigid
            continuation.submit = t;
            self.obs.registry.incr("jobs/requeued", 1);
            if self.obs.bus.enabled(TraceCategory::Job) {
                self.obs.bus.record(
                    t,
                    TraceEvent::JobRequeued {
                        job: r.job.id.0,
                        remaining_secs: remaining,
                    },
                );
            }
            self.queue.push(continuation);
        }
    }

    fn on_power_tick(&mut self, t: SimTime) {
        let watts = self.meter.system_watts();
        self.metrics.incr("rm/power_ticks", 1);
        // With the bounded power trace on, the meter already holds the
        // gridded system trace; this full per-tick copy in the
        // diagnostic registry (one point per tick, forever) is the only
        // other horizon-proportional store, so it is dropped too.
        // Nothing in SimOutcome reads it.
        if !self.config.bounded_power_trace {
            self.metrics.trace("power/system_watts", t, watts);
        }
        // What the control plane *sees* — subject to sensor dropout,
        // stuck-at windows, and the staleness fallback. Identical to
        // `watts` when sensor faults are off.
        let observed = self.sample_telemetry(t, watts);
        // Budget violation accounting against the *live* budget (demand-
        // response resizes move it during the run). This is ground truth,
        // deliberately independent of what the sensors claim.
        if let Some(limit) = self.budget.as_ref().map(PowerBudget::total_watts) {
            let dt = (t - self.last_tick).as_secs();
            if watts > limit + 1e-6 {
                self.violation_accum_secs += dt;
            }
        }
        // Grid co-simulation settles the same interval (it reads
        // `last_tick` for its dt), then steers the budget target.
        self.grid_tick(t, watts);
        self.last_tick = t;

        // Emergency response (RIKEN) and idle shutdown (Mämmelä / Tokyo
        // Tech). Adapter mode routes both through the unified action
        // apply path — the same funnel a learned controller uses; the
        // legacy path dispatches inline exactly as the pre-refactor
        // engine did (equivalence is proptested).
        match self.config.control_mode {
            ControlMode::Adapters => self.engineered_tick_actions(t, observed),
            ControlMode::DirectLegacy => {
                self.legacy_emergency_response(t, observed);
                self.legacy_shutdown_scan(t);
            }
        }
    }

    /// Adapter mode: the engineered emergency and idle-shutdown policies
    /// emit [`ControlAction`]s through the unified apply path.
    fn engineered_tick_actions(&mut self, t: SimTime, observed: f64) {
        // Emergency response drives on *observed* power — a stale sensor
        // makes the response conservative (the fallback estimate errs
        // high), never blind.
        if let Some(em) = self.config.emergency.clone() {
            if em.should_respond(t, observed) {
                let _ = self.apply_action(
                    t,
                    &ControlAction::EmergencyShed {
                        observed_watts: observed,
                        limit_watts: em.limit_watts,
                        target_watts: em.target_watts(),
                        victim_order: em.victim_order,
                        cooldown: em.start_cooldown,
                    },
                    ActionSource::Engineered,
                );
            }
        }
        // Idle shutdown honours the control plane's override (a learned
        // controller can retune or disable it); seasonal gating follows
        // the facility's calendar (its weather model's start day).
        if let Some(sd) = self.effective_shutdown().cloned() {
            let doy0 = self
                .config
                .facility
                .as_ref()
                .map_or(0, |f| f.config().weather.start_day_of_year);
            if sd.season_active_on(t, doy0) {
                let _ = self.apply_action(
                    t,
                    &ControlAction::PowerOffIdle {
                        idle_threshold: sd.idle_threshold,
                        min_idle_reserve: sd.min_idle_reserve,
                        shutdown_time: sd.shutdown_time,
                    },
                    ActionSource::Engineered,
                );
            }
        }
    }

    /// Pre-refactor inline emergency dispatch, kept for the equivalence
    /// proptests ([`ControlMode::DirectLegacy`]).
    fn legacy_emergency_response(&mut self, t: SimTime, observed: f64) {
        if let Some(em) = self.config.emergency.clone() {
            if em.armed_at(t) && observed > em.limit_watts {
                self.emergency_shed(
                    t,
                    observed,
                    em.limit_watts,
                    em.target_watts(),
                    em.victim_order,
                    em.start_cooldown,
                );
            }
        }
    }

    /// Pre-refactor inline shutdown scan, kept for the equivalence
    /// proptests ([`ControlMode::DirectLegacy`]).
    fn legacy_shutdown_scan(&mut self, t: SimTime) {
        if let Some(sd) = self.config.shutdown.clone() {
            let doy0 = self
                .config
                .facility
                .as_ref()
                .map_or(0, |f| f.config().weather.start_day_of_year);
            if sd.season_active_on(t, doy0) {
                self.power_off_idle(t, sd.idle_threshold, sd.min_idle_reserve, sd.shutdown_time);
            }
        }
    }

    fn finalize(mut self) -> (SimOutcome, ObsBundle) {
        let end = self.sim.now().max(self.config.horizon);
        // Account busy time of still-running jobs up to the horizon.
        let running: Vec<RunningJob> = self.running.values().cloned().collect();
        for r in &running {
            self.busy_node_seconds +=
                (end.saturating_since(r.start)).as_secs() * r.nodes.len() as f64;
        }
        let span = end.as_secs().max(1e-9);
        let total_nodes = f64::from(self.system.spec().total_nodes());
        self.metrics.incr(
            "sim/events_processed",
            self.sim.events_processed() + self.local_events,
        );
        let energy = self.meter.system_energy_joules(SimTime::ZERO, end);
        let peak = self.meter.peak_system_watts(SimTime::ZERO, end);
        let avg = self.meter.avg_system_watts(SimTime::ZERO, end);
        let walltime_kills = self.agg.walltime_kills;
        let n_completed = self.agg.count;
        // Failure observability: downtime over completed repairs plus
        // nodes still down at the horizon, accrued to the end.
        let mut node_downtime_secs = self.repair_downtime_secs;
        let mut nodes_down_at_end = 0u64;
        for since in self.down_since.iter().flatten() {
            node_downtime_secs += end.saturating_since(*since).as_secs();
            nodes_down_at_end += 1;
        }
        let mttr_secs = if self.repairs_completed > 0 {
            self.repair_downtime_secs / self.repairs_completed as f64
        } else {
            0.0
        };
        // The obs registry is the single source of truth for robustness
        // counters (requeues, telemetry fallbacks, fencing); fold it into
        // the legacy counter map so existing consumers see one namespace.
        let mut counters = self.metrics.snapshot().counters;
        for (k, v) in self.obs.registry.counters() {
            *counters.entry(k.to_string()).or_insert(0) += v;
        }
        let requeues = self.obs.registry.counter("jobs/requeued");
        let telemetry_fallbacks = self.obs.registry.counter("faults/telemetry_fallbacks");
        let fenced_nodes = self.obs.registry.counter("faults/fenced_nodes");
        let bundle = self.obs.into_bundle();
        let outcome = SimOutcome {
            policy: self.policy.name().to_owned(),
            completed: n_completed,
            walltime_kills,
            emergency_kills: self.emergency_kills,
            unfinished: (self.queue.len() + running.len()) as u64,
            utilization: self.busy_node_seconds / (total_nodes * span),
            mean_wait_secs: self.agg.mean_wait(),
            max_wait_secs: self.agg.wait_max,
            mean_bounded_slowdown: self.agg.mean_slowdown(),
            energy_joules: energy,
            peak_watts: peak,
            avg_watts: avg,
            budget_violation_secs: self.violation_accum_secs,
            throughput_per_day: n_completed as f64 / (span / 86_400.0).max(1e-9),
            energy_per_job_joules: if n_completed > 0 {
                energy / n_completed as f64
            } else {
                0.0
            },
            node_failures: self.failure_counts.iter().sum(),
            per_node_failures: self.failure_counts,
            node_downtime_secs,
            mttr_secs,
            requeues,
            telemetry_fallbacks,
            fenced_nodes,
            nodes_down_at_end,
            jobs: self.completed,
            counters,
            power_trace: self
                .meter
                .power_trace_rows(SimTime::ZERO, end, power_trace_grid())
                .into_iter()
                .map(|(t, w)| (t.as_secs(), w))
                .collect(),
        };
        (outcome, bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::fcfs::Fcfs;
    use epa_cluster::node::NodeSpec;
    use epa_cluster::system::SystemSpec;
    use epa_cluster::topology::Topology;
    use epa_workload::job::JobBuilder;

    pub(crate) fn small_system(nodes: u32) -> System {
        SystemSpec {
            name: "test".into(),
            cabinets: 1,
            nodes_per_cabinet: nodes,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 8 },
            peak_tflops: 1.0,
        }
        .build()
    }

    fn run_jobs(jobs: Vec<Job>, nodes: u32, horizon_h: f64) -> SimOutcome {
        let mut policy = Fcfs;
        let config = EngineConfig::new(SimTime::from_hours(horizon_h));
        ClusterSim::new(small_system(nodes), jobs, &mut policy, config).run()
    }

    #[test]
    fn streaming_mode_matches_default_outcome_bitwise() {
        // retain_completed=false + bounded_power_trace=true is the
        // bounded-memory streaming configuration; every scalar the
        // outcome reports (and the gridded power trace) must stay
        // bit-identical to the default mode.
        let jobs: Vec<Job> = (0..40)
            .map(|i| {
                JobBuilder::new(i + 1)
                    .nodes(1 + (i % 5) as u32)
                    .runtime(SimDuration::from_mins(20.0 + 13.0 * (i % 7) as f64))
                    .estimate(SimDuration::from_hours(2.0))
                    .submit(SimTime::from_secs(360.0 * i as f64))
                    .build()
            })
            .collect();
        let horizon = SimTime::from_hours(24.0);
        let mut policy = Fcfs;
        let default_out = ClusterSim::new(
            small_system(8),
            jobs.clone(),
            &mut policy,
            EngineConfig::new(horizon),
        )
        .run();
        let mut streaming_cfg = EngineConfig::new(horizon);
        streaming_cfg.retain_completed = false;
        streaming_cfg.bounded_power_trace = true;
        let streaming_out =
            ClusterSim::new(small_system(8), jobs, &mut policy, streaming_cfg).run();

        assert_eq!(default_out.completed, streaming_out.completed);
        assert_eq!(default_out.walltime_kills, streaming_out.walltime_kills);
        assert_eq!(default_out.unfinished, streaming_out.unfinished);
        for (name, a, b) in [
            (
                "mean_wait",
                default_out.mean_wait_secs,
                streaming_out.mean_wait_secs,
            ),
            (
                "max_wait",
                default_out.max_wait_secs,
                streaming_out.max_wait_secs,
            ),
            (
                "slowdown",
                default_out.mean_bounded_slowdown,
                streaming_out.mean_bounded_slowdown,
            ),
            (
                "energy",
                default_out.energy_joules,
                streaming_out.energy_joules,
            ),
            ("peak", default_out.peak_watts, streaming_out.peak_watts),
            ("avg", default_out.avg_watts, streaming_out.avg_watts),
            ("util", default_out.utilization, streaming_out.utilization),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} vs {b}");
        }
        assert_eq!(
            default_out.power_trace.len(),
            streaming_out.power_trace.len()
        );
        for ((dt_, dw), (st, sw)) in default_out
            .power_trace
            .iter()
            .zip(&streaming_out.power_trace)
        {
            assert_eq!(dt_.to_bits(), st.to_bits());
            assert_eq!(
                dw.to_bits(),
                sw.to_bits(),
                "power trace diverges at t={dt_}"
            );
        }
        assert_eq!(default_out.jobs.len(), 40);
        assert!(
            streaming_out.jobs.is_empty(),
            "streaming mode must not retain per-job records"
        );
    }

    #[test]
    fn parse_shards_accepts_positive_integers() {
        assert_eq!(parse_shards("1"), Ok(1));
        assert_eq!(parse_shards("4"), Ok(4));
        assert_eq!(parse_shards(" 16 "), Ok(16));
    }

    #[test]
    fn parse_shards_rejects_garbage_and_zero() {
        let err = parse_shards("abc").unwrap_err();
        assert!(err.contains("abc"), "error should name the value: {err}");
        let err = parse_shards("0").unwrap_err();
        assert!(err.contains('0'), "error should name the value: {err}");
        assert!(parse_shards("").is_err());
        assert!(parse_shards("-3").is_err());
        assert!(parse_shards("2.5").is_err());
    }

    #[test]
    fn single_job_lifecycle() {
        let job = JobBuilder::new(1)
            .nodes(4)
            .runtime(SimDuration::from_hours(1.0))
            .estimate(SimDuration::from_hours(2.0))
            .build();
        let out = run_jobs(vec![job], 8, 12.0);
        assert_eq!(out.completed, 1);
        assert_eq!(out.walltime_kills, 0);
        assert_eq!(out.unfinished, 0);
        let c = &out.jobs[0];
        assert_eq!(c.nodes, 4);
        assert!(c.wait_secs < 1e-9);
        assert!((c.run_secs - 3600.0).abs() < 1e-6);
        // Energy: 4 nodes × ~290 W × 3600 s (balanced profile has util<1,
        // so between idle and nominal).
        assert!(c.energy_joules > 4.0 * 90.0 * 3600.0);
        assert!(c.energy_joules < 4.0 * 290.0 * 3600.0 + 1.0);
    }

    #[test]
    fn walltime_kill_enforced() {
        let job = JobBuilder::new(1)
            .nodes(1)
            .runtime(SimDuration::from_hours(5.0))
            .estimate(SimDuration::from_hours(1.0))
            .build();
        let out = run_jobs(vec![job], 4, 12.0);
        assert_eq!(out.completed, 1);
        assert_eq!(out.walltime_kills, 1);
        assert!((out.jobs[0].run_secs - 3600.0).abs() < 1e-6);
    }

    #[test]
    fn jobs_queue_when_machine_full() {
        let j1 = JobBuilder::new(1)
            .nodes(4)
            .runtime(SimDuration::from_hours(1.0))
            .build();
        let j2 = JobBuilder::new(2)
            .nodes(4)
            .runtime(SimDuration::from_hours(1.0))
            .build();
        let out = run_jobs(vec![j1, j2], 4, 12.0);
        assert_eq!(out.completed, 2);
        let waits: Vec<f64> = out.jobs.iter().map(|c| c.wait_secs).collect();
        // One waited for the other.
        assert!(waits.iter().any(|&w| w < 1e-9));
        assert!(waits.iter().any(|&w| (w - 3600.0).abs() < 1e-6));
    }

    #[test]
    fn horizon_cuts_off_unfinished() {
        let job = JobBuilder::new(1)
            .nodes(1)
            .runtime(SimDuration::from_hours(10.0))
            .estimate(SimDuration::from_hours(20.0))
            .build();
        let out = run_jobs(vec![job], 4, 2.0);
        assert_eq!(out.completed, 0);
        assert_eq!(out.unfinished, 1);
        // Utilization counts the partial execution.
        assert!(out.utilization > 0.2);
    }

    #[test]
    fn budget_admission_blocks_and_recovers() {
        // Budget admits ~one 2-node job at a time (2×290 = 580 W busy).
        let jobs: Vec<Job> = (0..2)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(2)
                    .runtime(SimDuration::from_hours(1.0))
                    .estimate(SimDuration::from_hours(1.5))
                    .build()
            })
            .collect();
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_hours(12.0));
        // Idle floor: 8 nodes × 90 = 720 W always drawn, but the budget
        // ledger tracks only job grants; give room for one job (~530 W at
        // util 0.845) but not two.
        config.power_budget_watts = Some(600.0);
        let out = ClusterSim::new(small_system(8), jobs, &mut policy, config).run();
        assert_eq!(out.completed, 2);
        // The second job must have waited for the first grant.
        let waits: Vec<f64> = out.jobs.iter().map(|c| c.wait_secs).collect();
        assert!(waits.iter().any(|&w| w > 3000.0), "waits {waits:?}");
    }

    #[test]
    fn energy_conservation_against_meter() {
        let jobs: Vec<Job> = (0..5)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(2)
                    .runtime(SimDuration::from_hours(1.0))
                    .submit(SimTime::from_hours(f64::from(i as u32)))
                    .build()
            })
            .collect();
        let out = run_jobs(jobs, 8, 24.0);
        assert_eq!(out.completed, 5);
        // System energy >= sum of job energies (idle draw on top).
        let job_energy: f64 = out.jobs.iter().map(|c| c.energy_joules).sum();
        assert!(out.energy_joules > job_energy);
        // Idle-only floor: 8 nodes × 90 W × 24 h.
        let idle_floor = 8.0 * 90.0 * 24.0 * 3600.0;
        assert!(out.energy_joules >= idle_floor * 0.99);
    }

    #[test]
    fn phase_changes_modulate_power() {
        // A balanced job has three phases with utilizations .95/.8/.5 —
        // the system trace must step through distinct levels.
        let job = JobBuilder::new(1)
            .nodes(4)
            .runtime(SimDuration::from_hours(2.0))
            .estimate(SimDuration::from_hours(4.0))
            .build();
        let mut policy = Fcfs;
        let config = EngineConfig::new(SimTime::from_hours(6.0));
        let out = ClusterSim::new(small_system(8), vec![job], &mut policy, config).run();
        assert_eq!(
            out.counters.get("jobs/phase_changes").copied().unwrap_or(0),
            2
        );
        // Distinct power levels appear in the trace while the job runs:
        // phase utils .95/.8/.5 → per-node 280/250/190 W + 4 idle nodes.
        let levels: std::collections::BTreeSet<i64> = out
            .power_trace
            .iter()
            .filter(|(t, _)| *t > 0.0 && *t < 2.0 * 3600.0)
            .map(|(_, w)| w.round() as i64)
            .collect();
        assert!(
            levels.len() >= 3,
            "expected >=3 power levels, got {levels:?}"
        );
        // Energy conservation still exact: job energy equals the phase-
        // weighted analytic value.
        let e = out.jobs[0].energy_joules;
        let expect = 4.0
            * 3600.0
            * (0.5 * 2.0 * (90.0 + 0.95 * 200.0)
                + 0.3 * 2.0 * (90.0 + 0.8 * 200.0)
                + 0.2 * 2.0 * (90.0 + 0.5 * 200.0));
        assert!(
            (e - expect).abs() < expect * 1e-6,
            "energy {e} vs analytic {expect}"
        );
    }

    #[test]
    fn node_failures_kill_jobs_and_repair() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(4)
                    .runtime(SimDuration::from_hours(2.0))
                    .estimate(SimDuration::from_hours(3.0))
                    .submit(SimTime::from_hours(f64::from(i as u32) * 0.5))
                    .build()
            })
            .collect();
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_days(3.0));
        config.node_mtbf = Some(SimDuration::from_hours(3.0));
        config.repair_time = SimDuration::from_hours(1.0);
        let out = ClusterSim::new(small_system(8), jobs, &mut policy, config).run();
        let failures = out.counters.get("rm/failures").copied().unwrap_or(0);
        assert!(failures > 5, "expected failures, got {failures}");
        let repairs = out.counters.get("rm/repairs").copied().unwrap_or(0);
        assert!(repairs > 0, "nodes must come back");
        let failed_jobs = out.jobs.iter().filter(|j| j.killed_by_failure).count();
        assert!(failed_jobs > 0, "some job should die to a failure");
        // Work continues despite failures.
        let ok = out
            .jobs
            .iter()
            .filter(|j| !j.killed_by_failure && !j.killed_at_walltime)
            .count();
        assert!(ok > 5, "only {ok} clean completions");
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let mk = || {
            let jobs: Vec<Job> = (0..10)
                .map(|i| {
                    JobBuilder::new(i)
                        .nodes(2)
                        .runtime(SimDuration::from_hours(1.0))
                        .build()
                })
                .collect();
            let mut policy = Fcfs;
            let mut config = EngineConfig::new(SimTime::from_days(1.0));
            config.node_mtbf = Some(SimDuration::from_hours(4.0));
            ClusterSim::new(small_system(8), jobs, &mut policy, config).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.counters.get("rm/failures"), b.counters.get("rm/failures"));
        assert_eq!(a.completed, b.completed);
        assert!((a.energy_joules - b.energy_joules).abs() < 1e-6);
    }

    #[test]
    fn requeued_killed_jobs_eventually_finish() {
        use crate::emergency::EmergencyPolicy;
        // Heavy jobs + an emergency limit that forces kills; with requeue
        // the work survives kills and completes later.
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(4)
                    .runtime(SimDuration::from_hours(2.0))
                    .estimate(SimDuration::from_hours(6.0))
                    .build()
            })
            .collect();
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_days(6.0));
        // 8-node machine: two jobs run (~2100 W); the limit sits between
        // one and two jobs' draw, so the second start breaches it.
        config.emergency = Some(EmergencyPolicy::new(1500.0));
        config.requeue_killed = true;
        let out = ClusterSim::new(small_system(8), jobs, &mut policy, config).run();
        let requeued = out.counters.get("jobs/requeued").copied().unwrap_or(0);
        assert!(requeued > 0, "emergency must requeue at least one job");
        // All six logical jobs eventually finish cleanly.
        let ok: std::collections::HashSet<u64> = out
            .jobs
            .iter()
            .filter(|j| !j.killed_by_emergency && !j.killed_at_walltime)
            .map(|j| j.id.0)
            .collect();
        assert_eq!(ok.len(), 6, "all jobs finish despite kills: {ok:?}");
    }

    #[test]
    fn checkpointing_bounds_lost_work() {
        use crate::emergency::EmergencyPolicy;
        let mk = |ckpt: Option<SimDuration>| {
            let jobs: Vec<Job> = (0..6)
                .map(|i| {
                    JobBuilder::new(i)
                        .nodes(4)
                        .runtime(SimDuration::from_hours(2.0))
                        .estimate(SimDuration::from_hours(6.0))
                        .build()
                })
                .collect();
            let mut policy = Fcfs;
            let mut config = EngineConfig::new(SimTime::from_days(6.0));
            config.emergency = Some(EmergencyPolicy::new(1500.0));
            config.requeue_killed = true;
            config.checkpoint_interval = ckpt;
            ClusterSim::new(small_system(8), jobs, &mut policy, config).run()
        };
        let without = mk(None);
        let with = mk(Some(SimDuration::from_mins(15.0)));
        // Total busy node-seconds shrink with checkpointing: killed work
        // is not redone from scratch.
        let busy = |o: &SimOutcome| -> f64 {
            o.jobs.iter().map(|j| f64::from(j.nodes) * j.run_secs).sum()
        };
        assert!(
            busy(&with) <= busy(&without) + 1e-6,
            "checkpointing must not increase total work: {} vs {}",
            busy(&with),
            busy(&without)
        );
        assert!(with.counters.get("jobs/requeued").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn stale_finish_does_not_complete_continuation() {
        use crate::emergency::EmergencyPolicy;
        // A killed-and-requeued job's continuation must run its full
        // remaining time, not be cut short by the original Finish event.
        let jobs = vec![
            JobBuilder::new(0)
                .nodes(4)
                .runtime(SimDuration::from_hours(3.0))
                .estimate(SimDuration::from_hours(8.0))
                .build(),
            JobBuilder::new(1)
                .nodes(4)
                .runtime(SimDuration::from_hours(3.0))
                .estimate(SimDuration::from_hours(8.0))
                .submit(SimTime::from_secs(600.0))
                .build(),
        ];
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_days(4.0));
        config.emergency = Some(EmergencyPolicy::new(1500.0));
        config.requeue_killed = true;
        let out = ClusterSim::new(small_system(8), jobs, &mut policy, config).run();
        // Every *clean* completion ran its full three hours.
        for j in out.jobs.iter().filter(|j| !j.killed_by_emergency) {
            assert!(
                (j.run_secs - 3.0 * 3600.0).abs() < 1.0,
                "job {} ran {} s",
                j.id,
                j.run_secs
            );
        }
    }

    #[test]
    fn demand_response_resize_blocks_then_recovers() {
        // Budget 1200 W: a 2-node job fits (~510 W). At t=1h demand
        // response cuts to 250 W — below even the min-frequency draw of
        // two nodes, so cap-to-fit cannot rescue a start; a job submitted
        // during the window must wait for the 3 h restore.
        let early: Vec<Job> = (0..1)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(2)
                    .runtime(SimDuration::from_mins(30.0))
                    .estimate(SimDuration::from_hours(1.0))
                    .build()
            })
            .collect();
        let mut jobs = early;
        jobs.push(
            JobBuilder::new(10)
                .nodes(2)
                .runtime(SimDuration::from_mins(30.0))
                .estimate(SimDuration::from_hours(1.0))
                .submit(SimTime::from_hours(1.5))
                .build(),
        );
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_hours(8.0));
        config.power_budget_watts = Some(1200.0);
        config.budget_schedule = vec![
            (SimTime::from_hours(1.0), 250.0),
            (SimTime::from_hours(3.0), 1200.0),
        ];
        let out = ClusterSim::new(small_system(8), jobs, &mut policy, config).run();
        assert_eq!(out.completed, 2);
        assert_eq!(
            out.counters
                .get("power/budget_resizes")
                .copied()
                .unwrap_or(0),
            2
        );
        let late = out.jobs.iter().find(|j| j.id == JobId(10)).unwrap();
        // Submitted at 1.5 h into a 500 W window; could only start at 3 h.
        assert!(
            late.wait_secs >= 1.4 * 3600.0,
            "late job waited only {} s",
            late.wait_secs
        );
    }

    #[test]
    fn capped_to_fit_counter_fires() {
        // A full-machine compute-bound job over the budget gets capped
        // rather than starved.
        let job = JobBuilder::new(1)
            .nodes(8)
            .app(epa_workload::job::AppProfile::compute_bound("hpl"))
            .runtime(SimDuration::from_hours(1.0))
            .estimate(SimDuration::from_hours(3.0))
            .build();
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_hours(8.0));
        // 8 × 290 W = 2320 W demand; budget below it but above min-freq draw.
        config.power_budget_watts = Some(1900.0);
        let out = ClusterSim::new(small_system(8), vec![job], &mut policy, config).run();
        assert_eq!(out.completed, 1);
        assert_eq!(
            out.counters
                .get("sched/start_capped_to_fit")
                .copied()
                .unwrap_or(0),
            1
        );
        // The capped job ran slower than its base runtime.
        assert!(out.jobs[0].run_secs > 3600.0);
    }

    #[test]
    fn degenerate_configs_rejected() {
        use crate::error::SchedError;
        let mk = || {
            (
                small_system(4),
                vec![JobBuilder::new(1).nodes(1).build()],
                EngineConfig::new(SimTime::from_hours(1.0)),
            )
        };
        let (sys, jobs, mut config) = mk();
        config.node_mtbf = Some(SimDuration::ZERO);
        let mut policy = Fcfs;
        let err = ClusterSim::try_new(sys, jobs, &mut policy, config).err();
        assert_eq!(err, Some(SchedError::NonPositiveMtbf));

        let (sys, jobs, mut config) = mk();
        config.repair_time = SimDuration::ZERO;
        let err = ClusterSim::try_new(sys, jobs, &mut policy, config).err();
        assert_eq!(err, Some(SchedError::NonPositiveRepairTime));

        let (sys, jobs, mut config) = mk();
        config.checkpoint_interval = Some(SimDuration::ZERO);
        let err = ClusterSim::try_new(sys, jobs, &mut policy, config).err();
        assert_eq!(err, Some(SchedError::ZeroCheckpointInterval));

        let (sys, jobs, mut config) = mk();
        config.faults = Some(epa_faults::FaultConfig {
            sensor: Some(epa_faults::SensorFaultConfig {
                dropout_prob: 2.0,
                ..epa_faults::SensorFaultConfig::default()
            }),
            ..epa_faults::FaultConfig::default()
        });
        let err = ClusterSim::try_new(sys, jobs, &mut policy, config).err();
        assert!(matches!(err, Some(SchedError::InvalidConfig(_))));

        // A valid config still constructs.
        let (sys, jobs, config) = mk();
        assert!(ClusterSim::try_new(sys, jobs, &mut policy, config).is_ok());
    }

    #[test]
    fn domain_faults_take_whole_cabinets_down() {
        use epa_faults::{DomainFaultConfig, FaultConfig};
        // 4 cabinets × 4 nodes; aggressive domain MTBF over 3 days.
        let sys = SystemSpec {
            name: "test".into(),
            cabinets: 4,
            nodes_per_cabinet: 4,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 8 },
            peak_tflops: 1.0,
        }
        .build();
        let jobs: Vec<Job> = (0..30)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(4)
                    .runtime(SimDuration::from_hours(2.0))
                    .estimate(SimDuration::from_hours(3.0))
                    .submit(SimTime::from_hours(f64::from(i as u32)))
                    .build()
            })
            .collect();
        let mut policy = Fcfs;
        let mut config = EngineConfig::new(SimTime::from_days(3.0));
        config.requeue_killed = true;
        config.faults = Some(FaultConfig {
            domain: Some(DomainFaultConfig {
                mtbf: SimDuration::from_hours(8.0),
                repair_time: SimDuration::from_hours(1.0),
            }),
            ..FaultConfig::default()
        });
        let out = ClusterSim::new(sys, jobs, &mut policy, config).run();
        let events = out
            .counters
            .get("faults/domain_events")
            .copied()
            .unwrap_or(0);
        assert!(events > 3, "3 days at 8 h MTBF should fire, got {events}");
        // A domain event downs up to a whole 4-node cabinet at once, so
        // failures outnumber events.
        assert!(out.node_failures > events, "correlated events down groups");
        assert_eq!(out.per_node_failures.len(), 16);
        assert_eq!(out.per_node_failures.iter().sum::<u64>(), out.node_failures);
        assert!(out.node_downtime_secs > 0.0);
        assert!(out.mttr_secs > 0.0, "completed repairs must yield MTTR");
        // MTTR cannot be below the configured repair time.
        assert!(out.mttr_secs >= 3600.0 - 1e-6);
    }

    #[test]
    fn domain_fault_runs_are_deterministic() {
        use epa_faults::{DomainFaultConfig, FaultConfig};
        let mk = || {
            let jobs: Vec<Job> = (0..10)
                .map(|i| {
                    JobBuilder::new(i)
                        .nodes(2)
                        .runtime(SimDuration::from_hours(1.0))
                        .build()
                })
                .collect();
            let mut policy = Fcfs;
            let mut config = EngineConfig::new(SimTime::from_days(1.0));
            config.requeue_killed = true;
            config.faults = Some(FaultConfig {
                domain: Some(DomainFaultConfig {
                    mtbf: SimDuration::from_hours(4.0),
                    repair_time: SimDuration::from_hours(1.0),
                }),
                seed: 42,
                ..FaultConfig::default()
            });
            ClusterSim::new(small_system(8), jobs, &mut policy, config).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.node_failures, b.node_failures);
        assert_eq!(a.per_node_failures, b.per_node_failures);
        assert_eq!(a.completed, b.completed);
        assert!((a.energy_joules - b.energy_joules).abs() < 1e-6);
        assert!((a.node_downtime_secs - b.node_downtime_secs).abs() < 1e-9);
    }

    #[test]
    fn throughput_metric() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                JobBuilder::new(i)
                    .nodes(1)
                    .runtime(SimDuration::from_mins(10.0))
                    .estimate(SimDuration::from_mins(30.0))
                    .build()
            })
            .collect();
        let out = run_jobs(jobs, 16, 24.0);
        assert_eq!(out.completed, 10);
        assert!((out.throughput_per_day - 10.0).abs() < 1e-6);
        assert!(out.energy_per_job_joules > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::policies::backfill::EasyBackfill;
    use crate::policies::fcfs::Fcfs;
    use epa_workload::job::JobBuilder;
    use proptest::prelude::*;

    fn arb_jobs() -> impl Strategy<Value = Vec<(u32, f64, f64, f64)>> {
        // (nodes, runtime h, estimate factor, submit h)
        proptest::collection::vec(
            ((1u32..8), (0.1f64..4.0), (1.0f64..3.0), (0.0f64..12.0)),
            1..25,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Engine invariants hold for arbitrary small workloads under both
        /// baseline policies: job conservation, bounded utilization,
        /// physical energy bounds, non-negative waits.
        #[test]
        fn engine_invariants(specs in arb_jobs(), easy in proptest::bool::ANY) {
            let jobs: Vec<epa_workload::job::Job> = specs
                .iter()
                .enumerate()
                .map(|(i, &(nodes, rt_h, est_f, sub_h))| {
                    JobBuilder::new(i as u64)
                        .nodes(nodes)
                        .runtime(SimDuration::from_hours(rt_h))
                        .estimate(SimDuration::from_hours(rt_h * est_f))
                        .submit(SimTime::from_hours(sub_h))
                        .build()
                })
                .collect();
            let n = jobs.len() as u64;
            let horizon = SimTime::from_days(3.0);
            let mut fcfs = Fcfs;
            let mut ez = EasyBackfill;
            let policy: &mut dyn crate::view::Policy =
                if easy { &mut ez } else { &mut fcfs };
            let config = EngineConfig::new(horizon);
            let out = ClusterSim::new(
                tests::small_system(8),
                jobs,
                policy,
                config,
            )
            .run();
            prop_assert_eq!(out.completed + out.unfinished, n, "job conservation");
            prop_assert!(out.utilization >= 0.0 && out.utilization <= 1.0 + 1e-9);
            let span = horizon.as_secs();
            let idle_floor = 8.0 * 90.0 * span;
            let peak_ceiling = 8.0 * 400.0 * span;
            prop_assert!(out.energy_joules >= idle_floor * 0.999);
            prop_assert!(out.energy_joules <= peak_ceiling * 1.001);
            prop_assert!(out.peak_watts <= 8.0 * 400.0 + 1e-6);
            for j in &out.jobs {
                prop_assert!(j.wait_secs >= -1e-9);
                prop_assert!(j.energy_joules >= 0.0);
            }
        }

        /// With a power budget, granted job power never exceeds it: the
        /// peak system draw stays under budget + idle draw of non-busy
        /// nodes.
        #[test]
        fn budget_never_structurally_exceeded(
            specs in arb_jobs(),
            budget_frac in 0.4f64..1.0,
        ) {
            let jobs: Vec<epa_workload::job::Job> = specs
                .iter()
                .enumerate()
                .map(|(i, &(nodes, rt_h, est_f, sub_h))| {
                    JobBuilder::new(i as u64)
                        .nodes(nodes)
                        .runtime(SimDuration::from_hours(rt_h))
                        .estimate(SimDuration::from_hours(rt_h * est_f))
                        .submit(SimTime::from_hours(sub_h))
                        .build()
                })
                .collect();
            let nominal = 8.0 * 290.0;
            let mut config = EngineConfig::new(SimTime::from_days(3.0));
            config.power_budget_watts = Some(nominal * budget_frac);
            let mut policy = EasyBackfill;
            let out = ClusterSim::new(tests::small_system(8), jobs, &mut policy, config).run();
            let idle_slack = 8.0 * 90.0;
            prop_assert!(
                out.peak_watts <= nominal * budget_frac + idle_slack + 1e-6,
                "peak {} vs budget {} + slack {}",
                out.peak_watts,
                nominal * budget_frac,
                idle_slack
            );
        }
    }
}
