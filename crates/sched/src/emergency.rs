//! Emergency power response.
//!
//! Table I, RIKEN production: "Automated emergency job killing if power
//! limit exceeded." When the system draw crosses `limit_watts`, the engine
//! kills the youngest running jobs until the projected draw is below the
//! limit minus a hysteresis margin (so a single breach doesn't oscillate).

use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which running jobs the response kills first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VictimOrder {
    /// Kill the most recently started jobs first (least sunk cost).
    #[default]
    Youngest,
    /// Kill the highest-draw jobs first (fewest kills per shed watt; the
    /// choice that pairs well with checkpointing since long-running hogs
    /// have checkpoints to fall back on).
    MostPowerful,
}

/// Emergency-response configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergencyPolicy {
    /// Hard power limit in IT watts; crossing it triggers the response.
    pub limit_watts: f64,
    /// Hysteresis: the response drives draw below
    /// `limit_watts × (1 − hysteresis_fraction)`.
    pub hysteresis_fraction: f64,
    /// When set, the response is armed only inside `[start, end)` — the
    /// shape of a demand-response compliance window or a contractual
    /// peak-hours limit. `None` = always armed.
    pub window: Option<(SimTime, SimTime)>,
    /// After a response, hold all new job starts for this long. Prevents
    /// the kill–restart thrash loop: without a cooldown the scheduler
    /// refills the machine on the very next round and breaches again.
    pub start_cooldown: SimDuration,
    /// Kill ordering.
    pub victim_order: VictimOrder,
}

impl EmergencyPolicy {
    /// Creates an always-armed policy with a 5% hysteresis and no
    /// cooldown (legacy instantaneous behaviour).
    #[must_use]
    pub fn new(limit_watts: f64) -> Self {
        EmergencyPolicy {
            limit_watts,
            hysteresis_fraction: 0.05,
            window: None,
            start_cooldown: SimDuration::ZERO,
            victim_order: VictimOrder::Youngest,
        }
    }

    /// Creates a policy armed only inside `[start, end)`.
    #[must_use]
    pub fn windowed(limit_watts: f64, start: SimTime, end: SimTime) -> Self {
        EmergencyPolicy {
            limit_watts,
            hysteresis_fraction: 0.05,
            window: Some((start, end)),
            start_cooldown: SimDuration::ZERO,
            victim_order: VictimOrder::Youngest,
        }
    }

    /// Sets the post-response start cooldown.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.start_cooldown = cooldown;
        self
    }

    /// Sets the victim ordering.
    #[must_use]
    pub fn with_victim_order(mut self, order: VictimOrder) -> Self {
        self.victim_order = order;
        self
    }

    /// True when the response is armed at `t`.
    #[must_use]
    pub fn armed_at(&self, t: SimTime) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => t >= start && t < end,
        }
    }

    /// The draw level the response aims for after a breach.
    #[must_use]
    pub fn target_watts(&self) -> f64 {
        self.limit_watts * (1.0 - self.hysteresis_fraction.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_below_limit() {
        let p = EmergencyPolicy::new(1000.0);
        assert!((p.target_watts() - 950.0).abs() < 1e-9);
    }

    #[test]
    fn hysteresis_clamped() {
        let p = EmergencyPolicy {
            limit_watts: 1000.0,
            hysteresis_fraction: 2.0,
            window: None,
            start_cooldown: SimDuration::ZERO,
            victim_order: VictimOrder::Youngest,
        };
        assert_eq!(p.target_watts(), 0.0);
    }

    #[test]
    fn window_arms_and_disarms() {
        let p =
            EmergencyPolicy::windowed(1000.0, SimTime::from_hours(10.0), SimTime::from_hours(14.0));
        assert!(!p.armed_at(SimTime::from_hours(9.0)));
        assert!(p.armed_at(SimTime::from_hours(10.0)));
        assert!(p.armed_at(SimTime::from_hours(13.9)));
        assert!(!p.armed_at(SimTime::from_hours(14.0)));
        assert!(EmergencyPolicy::new(1.0).armed_at(SimTime::from_days(99.0)));
    }
}
