//! Emergency power response.
//!
//! Table I, RIKEN production: "Automated emergency job killing if power
//! limit exceeded." When the system draw crosses `limit_watts`, the engine
//! kills the youngest running jobs until the projected draw is below the
//! limit minus a hysteresis margin (so a single breach doesn't oscillate).

use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which running jobs the response kills first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VictimOrder {
    /// Kill the most recently started jobs first (least sunk cost).
    #[default]
    Youngest,
    /// Kill the highest-draw jobs first (fewest kills per shed watt; the
    /// choice that pairs well with checkpointing since long-running hogs
    /// have checkpoints to fall back on).
    MostPowerful,
}

/// Emergency-response configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergencyPolicy {
    /// Hard power limit in IT watts; crossing it triggers the response.
    pub limit_watts: f64,
    /// Hysteresis: the response drives draw below
    /// `limit_watts × (1 − hysteresis_fraction)`.
    pub hysteresis_fraction: f64,
    /// When set, the response is armed only inside `[start, end)` — the
    /// shape of a demand-response compliance window or a contractual
    /// peak-hours limit. `None` = always armed.
    pub window: Option<(SimTime, SimTime)>,
    /// After a response, hold all new job starts for this long. Prevents
    /// the kill–restart thrash loop: without a cooldown the scheduler
    /// refills the machine on the very next round and breaches again.
    pub start_cooldown: SimDuration,
    /// Kill ordering.
    pub victim_order: VictimOrder,
}

impl EmergencyPolicy {
    /// Creates an always-armed policy with a 5% hysteresis and no
    /// cooldown (legacy instantaneous behaviour).
    #[must_use]
    pub fn new(limit_watts: f64) -> Self {
        EmergencyPolicy {
            limit_watts,
            hysteresis_fraction: 0.05,
            window: None,
            start_cooldown: SimDuration::ZERO,
            victim_order: VictimOrder::Youngest,
        }
    }

    /// Creates a policy armed only inside `[start, end)`.
    #[must_use]
    pub fn windowed(limit_watts: f64, start: SimTime, end: SimTime) -> Self {
        EmergencyPolicy {
            limit_watts,
            hysteresis_fraction: 0.05,
            window: Some((start, end)),
            start_cooldown: SimDuration::ZERO,
            victim_order: VictimOrder::Youngest,
        }
    }

    /// Sets the post-response start cooldown.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: SimDuration) -> Self {
        self.start_cooldown = cooldown;
        self
    }

    /// Sets the victim ordering.
    #[must_use]
    pub fn with_victim_order(mut self, order: VictimOrder) -> Self {
        self.victim_order = order;
        self
    }

    /// True when the response is armed at `t`.
    #[must_use]
    pub fn armed_at(&self, t: SimTime) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => t >= start && t < end,
        }
    }

    /// The draw level the response aims for after a breach.
    #[must_use]
    pub fn target_watts(&self) -> f64 {
        self.limit_watts * (1.0 - self.hysteresis_fraction.clamp(0.0, 1.0))
    }

    /// True when the policy should respond at `t` with draw `observed`:
    /// armed *and* over the limit. The single predicate both the adapter
    /// and the legacy dispatch consult, so window-edge semantics cannot
    /// drift between the two paths.
    ///
    /// The breach test is a strict `>`: drawing exactly the limit is
    /// compliant. Combined with the `[start, end)` arming window this
    /// pins down every boundary: a degenerate window (`start == end`)
    /// never arms, and `t == end` is already disarmed.
    #[must_use]
    pub fn should_respond(&self, t: SimTime, observed_watts: f64) -> bool {
        self.armed_at(t) && observed_watts > self.limit_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_below_limit() {
        let p = EmergencyPolicy::new(1000.0);
        assert!((p.target_watts() - 950.0).abs() < 1e-9);
    }

    #[test]
    fn hysteresis_clamped() {
        let p = EmergencyPolicy {
            limit_watts: 1000.0,
            hysteresis_fraction: 2.0,
            window: None,
            start_cooldown: SimDuration::ZERO,
            victim_order: VictimOrder::Youngest,
        };
        assert_eq!(p.target_watts(), 0.0);
    }

    #[test]
    fn window_arms_and_disarms() {
        let p =
            EmergencyPolicy::windowed(1000.0, SimTime::from_hours(10.0), SimTime::from_hours(14.0));
        assert!(!p.armed_at(SimTime::from_hours(9.0)));
        assert!(p.armed_at(SimTime::from_hours(10.0)));
        assert!(p.armed_at(SimTime::from_hours(13.9)));
        assert!(!p.armed_at(SimTime::from_hours(14.0)));
        assert!(EmergencyPolicy::new(1.0).armed_at(SimTime::from_days(99.0)));
    }

    #[test]
    fn degenerate_window_never_arms() {
        // start == end is the empty interval [t, t): no instant arms,
        // not even the boundary itself.
        let t0 = SimTime::from_hours(10.0);
        let p = EmergencyPolicy::windowed(1000.0, t0, t0);
        assert!(!p.armed_at(SimTime::from_hours(9.999)));
        assert!(!p.armed_at(t0));
        assert!(!p.armed_at(SimTime::from_hours(10.001)));
        assert!(!p.should_respond(t0, 1e9));
    }

    #[test]
    fn exact_end_is_disarmed_even_under_breach() {
        let p =
            EmergencyPolicy::windowed(1000.0, SimTime::from_hours(10.0), SimTime::from_hours(14.0));
        // One tick inside the window responds; the closing boundary does
        // not, no matter how large the breach.
        assert!(p.should_respond(SimTime::from_secs(14.0 * 3600.0 - 1.0), 2000.0));
        assert!(!p.should_respond(SimTime::from_hours(14.0), 2000.0));
    }

    #[test]
    fn draw_at_limit_is_compliant() {
        // The breach test is strict: exactly at the limit never triggers,
        // so a response that settles the draw on the limit cannot
        // immediately re-trigger.
        let p = EmergencyPolicy::new(1000.0);
        assert!(!p.should_respond(SimTime::ZERO, 1000.0));
        assert!(p.should_respond(SimTime::ZERO, 1000.0 + 1e-9));
    }

    #[test]
    fn rebreach_inside_hysteresis_band_does_not_retrigger() {
        // After a response the draw sits near target_watts. Anywhere in
        // the hysteresis band (target, limit] must stay quiet; only a
        // full re-breach above the limit re-arms the response.
        let p = EmergencyPolicy::new(1000.0);
        let target = p.target_watts();
        assert!(target < p.limit_watts);
        assert!(!p.should_respond(SimTime::from_hours(1.0), target));
        assert!(!p.should_respond(SimTime::from_hours(1.0), (target + p.limit_watts) / 2.0));
        assert!(!p.should_respond(SimTime::from_hours(1.0), p.limit_watts));
        assert!(p.should_respond(SimTime::from_hours(1.0), p.limit_watts * 1.01));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `armed_at` is exactly the half-open interval test: armed iff
        /// `start <= t < end`, for every window shape including the
        /// degenerate `start == end` and inverted (`end < start`) ones.
        #[test]
        fn armed_iff_in_half_open_window(
            start_s in 0.0f64..200_000.0,
            len_s in -50_000.0f64..200_000.0,
            t_s in 0.0f64..400_000.0,
        ) {
            let start = SimTime::from_secs(start_s);
            let end = SimTime::from_secs((start_s + len_s).max(0.0));
            let p = EmergencyPolicy::windowed(1000.0, start, end);
            let t = SimTime::from_secs(t_s);
            prop_assert_eq!(p.armed_at(t), t >= start && t < end);
        }

        /// `should_respond` decomposes as armed ∧ strictly-over-limit;
        /// in particular the hysteresis band (target, limit] never
        /// triggers, which is what prevents shed→re-trigger oscillation.
        #[test]
        fn respond_iff_armed_and_over_limit(
            limit in 100.0f64..10_000.0,
            hyst in 0.0f64..0.5,
            frac in 0.0f64..2.0,
            t_s in 0.0f64..100_000.0,
            windowed in proptest::bool::ANY,
        ) {
            let mut p = EmergencyPolicy::new(limit);
            p.hysteresis_fraction = hyst;
            if windowed {
                p.window = Some((
                    SimTime::from_secs(25_000.0),
                    SimTime::from_secs(75_000.0),
                ));
            }
            let t = SimTime::from_secs(t_s);
            let observed = limit * frac;
            prop_assert_eq!(
                p.should_respond(t, observed),
                p.armed_at(t) && observed > limit
            );
            // The post-response level is always compliant: settling on
            // target can never immediately re-trigger.
            prop_assert!(!p.should_respond(t, p.target_watts()));
        }
    }
}
