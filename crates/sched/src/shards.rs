//! Shard-local event staging for the partitioned engine.
//!
//! [`ClusterSim`](crate::engine::ClusterSim) partitions the cluster into
//! cabinet-aligned shards ([`ShardTopology`]) and routes the two event
//! kinds whose handlers touch only shard-owned state — phase changes of a
//! running job and node shutdown completions — into per-shard
//! [`EventQueue`]s instead of the global simulation queue. Everything
//! else (submits, finishes, power ticks, failures, budget resizes) stays
//! centralized and acts as a synchronization barrier.
//!
//! ## Mailbox protocol
//!
//! A global handler *posts* a shard-local event to the owning shard's
//! queue, stamped with a sequence number allocated from the global
//! simulation queue ([`Simulation::alloc_seq`](
//! epa_simcore::engine::Simulation::alloc_seq)). Because every queue
//! shares one `(time, seq)` numbering, the merged order across all queues
//! is exactly the order a single queue would deliver — sharding moves
//! *where* events wait, never *when* they act.
//!
//! ## Conservative time windows
//!
//! Between two global events the engine drains every shard event whose
//! key lies strictly before the next global event's `(time, seq)` key —
//! the conservative lookahead window. The ever-pending `PowerTick` caps
//! the window at the telemetry interval, so no shard can run ahead of a
//! telemetry/emergency/shutdown decision that might affect it. Shards
//! *resolve* their windows independently (parallelizable: resolution
//! reads only state that shard-local effects never mutate); the effects
//! are then applied serially in merged key order, which keeps every
//! floating-point fold in the exact serial-engine order — the outcome is
//! byte-identical at any shard count and any thread count.

use epa_cluster::alloc::Allocator;
use epa_cluster::node::NodeId;
use epa_cluster::shard::ShardTopology;
use epa_simcore::event::EventQueue;
use epa_simcore::rng::SimRng;
use epa_simcore::time::SimTime;
use epa_workload::job::JobId;

/// An event whose handler touches only state owned by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalEv {
    /// A running job enters its `usize`-th phase (attempt-stamped; stale
    /// attempts resolve to a no-op, exactly like the serial handler).
    PhaseChange(JobId, u32, usize),
    /// An idle node finishes its shutdown drain and powers off.
    ShutdownDone(NodeId),
}

/// A `(time, seq)` event key in the global numbering.
pub type EventKey = (SimTime, u64);

/// One shard's drained window: key-sorted `(t, seq, event)` triples.
pub type ShardWindow = Vec<(SimTime, u64, LocalEv)>;

/// The per-shard event queues, deterministic RNG substreams, and local
/// clocks of a partitioned run.
#[derive(Debug)]
pub struct ShardSet {
    topo: ShardTopology,
    queues: Vec<EventQueue<LocalEv>>,
    /// Deterministic substream per shard, split from the engine's root
    /// RNG by index — identical for shard `i` at any shard count. Local
    /// handlers today are deterministic; the substream is the designated
    /// draw source for any future shard-local stochastic model so that
    /// adding one cannot perturb the global sequence.
    rngs: Vec<SimRng>,
    /// Each shard's local clock: the key of the last event it applied.
    /// Mailbox messages must never land at-or-behind it.
    clocks: Vec<Option<EventKey>>,
}

impl ShardSet {
    /// Builds the shard set for a topology, splitting one RNG substream
    /// per shard from `root`.
    #[must_use]
    pub fn new(topo: ShardTopology, root: &SimRng) -> Self {
        let n = topo.shards() as usize;
        ShardSet {
            rngs: root.substreams("shard", n),
            queues: (0..n).map(|_| EventQueue::new()).collect(),
            clocks: vec![None; n],
            topo,
        }
    }

    /// The shard topology.
    #[must_use]
    pub fn topo(&self) -> &ShardTopology {
        &self.topo
    }

    /// This shard's deterministic RNG substream.
    pub fn rng(&mut self, shard: u32) -> &mut SimRng {
        &mut self.rngs[shard as usize]
    }

    /// Total events pending across all shard queues.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queues.iter().map(EventQueue::len).sum()
    }

    /// The earliest pending key across all shard queues.
    #[must_use]
    pub fn min_key(&self) -> Option<EventKey> {
        self.queues.iter().filter_map(EventQueue::peek_key).min()
    }

    /// Posts an event to `shard`'s mailbox under a caller-allocated
    /// global sequence number.
    ///
    /// # Panics
    /// In debug builds, panics if the message would time-travel behind
    /// the shard's local clock (its last applied event key).
    pub fn post(&mut self, shard: u32, t: SimTime, seq: u64, ev: LocalEv) {
        debug_assert!(
            self.clocks[shard as usize].is_none_or(|c| (t, seq) > c),
            "mailbox message ({t}, {seq}) behind shard {shard}'s clock {:?}",
            self.clocks[shard as usize]
        );
        self.queues[shard as usize].push_with_seq(t, seq, ev);
    }

    /// Pops every event with key strictly before `bound` (all pending
    /// events when `bound` is `None`), stopping at the horizon.
    ///
    /// Returns the per-shard windows — each internally key-sorted, ready
    /// for independent resolution — and whether a past-horizon event was
    /// reached. Because keys are globally ordered and time is
    /// non-decreasing along the merged order, every returned event
    /// precedes the first past-horizon event; a shard whose head is past
    /// the horizon is cleared (nothing behind it can be earlier).
    pub fn pop_window(
        &mut self,
        bound: Option<EventKey>,
        horizon: SimTime,
    ) -> (Vec<(u32, ShardWindow)>, bool) {
        let mut hit_horizon = false;
        let mut windows = Vec::new();
        for s in 0..self.queues.len() {
            let mut window = Vec::new();
            while let Some(key) = self.queues[s].peek_key() {
                if bound.is_some_and(|b| key >= b) {
                    break;
                }
                if key.0 > horizon {
                    // Everything behind this head is later still.
                    hit_horizon = true;
                    self.queues[s].clear();
                    break;
                }
                let (t, seq, ev) = self.queues[s].pop_keyed().expect("peeked head");
                debug_assert!(
                    self.clocks[s].is_none_or(|c| (t, seq) > c),
                    "shard {s} clock moved backwards"
                );
                self.clocks[s] = Some((t, seq));
                window.push((t, seq, ev));
            }
            if !window.is_empty() {
                windows.push((s as u32, window));
            }
        }
        (windows, hit_horizon)
    }

    /// Encodes mailboxes (key-sorted, with per-queue sequence counters),
    /// RNG substream positions, and local clocks. The topology is
    /// configuration and is re-supplied at restore.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.u32(self.topo.shards());
        for q in &self.queues {
            w.u64(q.seq());
            w.seq(&q.sorted_entries(), |w, &(t, seq, ev)| {
                w.f64(t.as_secs());
                w.u64(seq);
                match ev {
                    LocalEv::PhaseChange(job, attempt, phase) => {
                        w.u8(0);
                        w.u64(job.0);
                        w.u32(*attempt);
                        w.usize(*phase);
                    }
                    LocalEv::ShutdownDone(node) => {
                        w.u8(1);
                        w.u32(node.0);
                    }
                }
            });
        }
        for rng in &self.rngs {
            let (seed, pos) = rng.snapshot_state();
            w.u64(seed);
            w.u64(pos);
        }
        for clock in &self.clocks {
            w.opt(clock.as_ref(), |w, &(t, seq)| {
                w.f64(t.as_secs());
                w.u64(seq);
            });
        }
    }

    /// Decodes a shard set written by [`ShardSet::snapshot_into`]. The
    /// topology is re-supplied; its shard count must match the snapshot.
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
        topo: ShardTopology,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        use epa_simcore::snap::SnapshotError;
        let shards = r.u32()?;
        if shards != topo.shards() {
            return Err(SnapshotError::TopologyMismatch {
                detail: format!(
                    "snapshot has {shards} shards, current topology has {}",
                    topo.shards()
                ),
            });
        }
        let n = shards as usize;
        let mut queues = Vec::with_capacity(n);
        for _ in 0..n {
            let seq = r.u64()?;
            let mut q = EventQueue::new();
            let entries = r.seq(|r| {
                let t = SimTime::from_secs(r.f64()?);
                let ev_seq = r.u64()?;
                let ev = match r.u8()? {
                    0 => LocalEv::PhaseChange(JobId(r.u64()?), r.u32()?, r.usize()?),
                    1 => LocalEv::ShutdownDone(NodeId(r.u32()?)),
                    tag => {
                        return Err(SnapshotError::Corrupt {
                            detail: format!("unknown shard-local event tag {tag}"),
                        })
                    }
                };
                Ok((t, ev_seq, ev))
            })?;
            for (t, ev_seq, ev) in entries {
                q.push_with_seq(t, ev_seq, ev);
            }
            q.set_seq(seq);
            queues.push(q);
        }
        let mut rngs = Vec::with_capacity(n);
        for _ in 0..n {
            let seed = r.u64()?;
            let pos = r.u64()?;
            rngs.push(SimRng::from_state(seed, pos));
        }
        let mut clocks = Vec::with_capacity(n);
        for _ in 0..n {
            clocks.push(r.opt(|r| Ok((SimTime::from_secs(r.f64()?), r.u64()?)))?);
        }
        Ok(ShardSet {
            topo,
            queues,
            rngs,
            clocks,
        })
    }

    /// Drops all pending events (end of run).
    pub fn clear(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
    }

    /// Structural shard invariant, checked by the engine behind
    /// `debug_assert!`: the topology is an exact partition (no node
    /// owned by two shards, none unowned) and the shard-scoped view of
    /// the allocator's free runs partitions the global free set.
    #[must_use]
    pub fn invariants_hold(&self, allocator: &Allocator) -> bool {
        if !self.topo.is_partition() {
            return false;
        }
        let sharded_free: usize = (0..self.topo.shards())
            .map(|s| {
                let (lo, hi) = self.topo.range(s);
                allocator.free_count_in(lo, hi)
            })
            .sum();
        sharded_free == allocator.free_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_cluster::alloc::AllocStrategy;
    use epa_cluster::topology::Topology;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn set(total: u32, npc: u32, shards: u32) -> ShardSet {
        ShardSet::new(
            ShardTopology::cabinet_aligned(total, npc, shards),
            &SimRng::new(7),
        )
    }

    #[test]
    fn windows_merge_in_global_key_order() {
        let mut s = set(32, 8, 4);
        // Post out of shard order under one shared numbering.
        s.post(2, t(5.0), 10, LocalEv::ShutdownDone(NodeId(16)));
        s.post(0, t(5.0), 3, LocalEv::ShutdownDone(NodeId(1)));
        s.post(1, t(2.0), 7, LocalEv::ShutdownDone(NodeId(9)));
        s.post(0, t(9.0), 20, LocalEv::ShutdownDone(NodeId(0)));
        let (windows, hit) = s.pop_window(Some((t(9.0), 20)), t(100.0));
        assert!(!hit);
        let mut merged: Vec<(SimTime, u64, LocalEv)> =
            windows.into_iter().flat_map(|(_, w)| w).collect();
        merged.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
        let keys: Vec<u64> = merged.iter().map(|&(_, seq, _)| seq).collect();
        assert_eq!(keys, vec![7, 3, 10], "strictly-before-bound, key order");
        assert_eq!(s.pending(), 1, "the bound event itself stays");
    }

    #[test]
    fn bound_none_drains_everything() {
        let mut s = set(16, 8, 2);
        s.post(0, t(1.0), 1, LocalEv::ShutdownDone(NodeId(0)));
        s.post(1, t(3.0), 2, LocalEv::ShutdownDone(NodeId(8)));
        let (windows, hit) = s.pop_window(None, t(100.0));
        assert!(!hit);
        assert_eq!(windows.len(), 2);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn horizon_cuts_window_and_reports_hit() {
        let mut s = set(16, 8, 2);
        s.post(0, t(1.0), 1, LocalEv::ShutdownDone(NodeId(0)));
        s.post(0, t(50.0), 2, LocalEv::ShutdownDone(NodeId(1)));
        s.post(0, t(60.0), 3, LocalEv::ShutdownDone(NodeId(2)));
        let (windows, hit) = s.pop_window(None, t(10.0));
        assert!(hit, "past-horizon head must be reported");
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].1.len(), 1, "only the pre-horizon event pops");
        assert_eq!(s.pending(), 0, "past-horizon tail is dropped");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "behind shard")]
    fn time_travel_post_panics() {
        let mut s = set(16, 8, 2);
        s.post(0, t(5.0), 9, LocalEv::ShutdownDone(NodeId(0)));
        let _ = s.pop_window(None, t(100.0));
        // The shard's clock is now (5.0, 9); an earlier key must refuse.
        s.post(0, t(4.0), 2, LocalEv::ShutdownDone(NodeId(1)));
    }

    #[test]
    fn shard_rngs_are_independent_of_shard_count() {
        let mut four = set(64, 16, 4);
        let mut two = set(64, 16, 2);
        assert_eq!(four.rng(0).uniform(), two.rng(0).uniform());
        assert_eq!(four.rng(1).uniform(), two.rng(1).uniform());
        let mut a = four.rng(2).clone();
        let mut b = four.rng(3).clone();
        assert_ne!(a.uniform(), b.uniform());
    }

    #[test]
    fn allocator_partition_invariant() {
        let topo = Topology::FatTree { arity: 8 };
        let mut alloc = Allocator::new(32, AllocStrategy::FirstFit, topo);
        let s = set(32, 8, 4);
        assert!(s.invariants_hold(&alloc));
        let held = alloc.allocate(10).unwrap();
        assert!(s.invariants_hold(&alloc));
        alloc.release(&held);
        assert!(s.invariants_hold(&alloc));
    }
}
