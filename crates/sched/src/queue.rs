//! The pending-job queue.
//!
//! Jobs wait in priority order (higher priority first, FIFO within a
//! priority). Policies receive the queue as a slice in that order; the
//! engine removes jobs by id when they start or are dropped.

use epa_workload::job::{Job, JobId};

/// Priority-then-FIFO pending queue.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    // Kept sorted: descending priority, ascending submit, ascending id.
    jobs: Vec<Job>,
}

impl JobQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a job at its priority position.
    pub fn push(&mut self, job: Job) {
        let idx = self
            .jobs
            .iter()
            .position(|j| {
                (j.priority < job.priority)
                    || (j.priority == job.priority && j.submit > job.submit)
                    || (j.priority == job.priority && j.submit == job.submit && j.id > job.id)
            })
            .unwrap_or(self.jobs.len());
        self.jobs.insert(idx, job);
    }

    /// Removes and returns the job with `id`, if queued.
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let idx = self.jobs.iter().position(|j| j.id == id)?;
        Some(self.jobs.remove(idx))
    }

    /// The queue contents in scheduling order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The head job (next to schedule), if any.
    #[must_use]
    pub fn head(&self) -> Option<&Job> {
        self.jobs.first()
    }

    /// Total nodes requested by all queued jobs (Q3b backlog size).
    #[must_use]
    pub fn backlog_nodes(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.nodes)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimTime;
    use epa_workload::job::JobBuilder;

    fn job(id: u64, prio: i32, submit: f64) -> Job {
        JobBuilder::new(id)
            .priority(prio)
            .submit(SimTime::from_secs(submit))
            .build()
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = JobQueue::new();
        q.push(job(1, 0, 10.0));
        q.push(job(2, 0, 5.0));
        q.push(job(3, 0, 7.0));
        let order: Vec<u64> = q.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn priority_dominates() {
        let mut q = JobQueue::new();
        q.push(job(1, 0, 1.0));
        q.push(job(2, 10, 99.0));
        assert_eq!(q.head().unwrap().id.0, 2);
    }

    #[test]
    fn equal_everything_breaks_by_id() {
        let mut q = JobQueue::new();
        q.push(job(5, 0, 1.0));
        q.push(job(3, 0, 1.0));
        let order: Vec<u64> = q.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(order, vec![3, 5]);
    }

    #[test]
    fn remove_by_id() {
        let mut q = JobQueue::new();
        q.push(job(1, 0, 1.0));
        q.push(job(2, 0, 2.0));
        assert!(q.remove(JobId(1)).is_some());
        assert!(q.remove(JobId(1)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn backlog_accounting() {
        let mut q = JobQueue::new();
        q.push(JobBuilder::new(1).nodes(16).build());
        q.push(JobBuilder::new(2).nodes(8).build());
        assert_eq!(q.backlog_nodes(), 24);
        assert!(!q.is_empty());
    }
}
