//! Windowed power-cap enforcement (Tokyo Tech).
//!
//! Table I, Tokyo Tech production: "Resource manager dynamically boots or
//! shuts down nodes to stay under power cap (summer only, enforced over
//! ~30 min window)." The controller watches the windowed average power
//! and recommends how many nodes to shut down (or allows to boot) so that
//! the *window average* — not the instantaneous draw — stays under the
//! cap. Working on the window lets short spikes through while preventing
//! sustained overdraw, and interacts with the job scheduler to avoid
//! killing jobs (shutdowns take idle nodes only).

use epa_obs::{TraceBus, TraceCategory, TraceEvent};
use epa_simcore::series::TimeSeries;
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Recommended action from an enforcement evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnforcementAction {
    /// Window average comfortably under the cap; nodes may boot.
    AllowBoot {
        /// How many node-equivalents of power headroom exist.
        nodes: u32,
    },
    /// Within the deadband; hold current state.
    Hold,
    /// Window average above the cap; shut down this many idle nodes.
    ShutDown {
        /// Nodes to power off.
        nodes: u32,
    },
}

/// Windowed cap enforcement controller.
#[derive(Debug, Clone)]
pub struct EnforcementWindow {
    cap_watts: f64,
    window: SimDuration,
    /// Deadband as a fraction of the cap (no action within ±band).
    deadband_fraction: f64,
    /// Power attributed to one node for conversion of watt-gaps to node
    /// counts (use the node's nominal draw).
    watts_per_node: f64,
    evaluations: u64,
    violations: u64,
}

impl EnforcementWindow {
    /// Creates a controller; Tokyo Tech's setup is a ~30 min window.
    #[must_use]
    pub fn new(cap_watts: f64, window: SimDuration, watts_per_node: f64) -> Self {
        EnforcementWindow {
            cap_watts,
            window,
            deadband_fraction: 0.03,
            watts_per_node: watts_per_node.max(1.0),
            evaluations: 0,
            violations: 0,
        }
    }

    /// The cap.
    #[must_use]
    pub fn cap_watts(&self) -> f64 {
        self.cap_watts
    }

    /// Re-programs the cap (inter-system re-splits).
    pub fn set_cap(&mut self, watts: f64) {
        self.cap_watts = watts;
    }

    /// The enforcement window length.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of evaluations performed.
    #[must_use]
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of evaluations that found the window average above the cap.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Windowed average of `trace` at `now`.
    #[must_use]
    pub fn window_average(&self, trace: &TimeSeries, now: SimTime) -> f64 {
        let start = if now.as_secs() > self.window.as_secs() {
            now - self.window
        } else {
            SimTime::ZERO
        };
        if now == start {
            return trace.value_at(now).unwrap_or(0.0);
        }
        trace.time_weighted_mean(start, now)
    }

    /// Evaluates the trace and recommends an action.
    pub fn evaluate(&mut self, trace: &TimeSeries, now: SimTime) -> EnforcementAction {
        self.evaluations += 1;
        let avg = self.window_average(trace, now);
        let band = self.cap_watts * self.deadband_fraction;
        if avg > self.cap_watts {
            self.violations += 1;
        }
        if avg > self.cap_watts + band {
            let over = avg - self.cap_watts;
            let nodes = (over / self.watts_per_node).ceil() as u32;
            EnforcementAction::ShutDown {
                nodes: nodes.max(1),
            }
        } else if avg < self.cap_watts - band {
            let under = self.cap_watts - avg;
            EnforcementAction::AllowBoot {
                nodes: (under / self.watts_per_node).floor() as u32,
            }
        } else {
            EnforcementAction::Hold
        }
    }

    /// [`EnforcementWindow::evaluate`] with decision tracing: the window
    /// average, cap, and recommended node delta (positive allows boots,
    /// negative shuts down, zero holds) are recorded on `bus`.
    pub fn evaluate_traced(
        &mut self,
        trace: &TimeSeries,
        now: SimTime,
        bus: &mut TraceBus,
    ) -> EnforcementAction {
        let action = self.evaluate(trace, now);
        if bus.enabled(TraceCategory::Enforcement) {
            let delta_nodes = match action {
                EnforcementAction::AllowBoot { nodes } => i64::from(nodes),
                EnforcementAction::Hold => 0,
                EnforcementAction::ShutDown { nodes } => -i64::from(nodes),
            };
            bus.record(
                now,
                TraceEvent::Enforcement {
                    window_avg_watts: self.window_average(trace, now),
                    cap_watts: self.cap_watts,
                    delta_nodes,
                },
            );
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn controller() -> EnforcementWindow {
        EnforcementWindow::new(10_000.0, SimDuration::from_mins(30.0), 290.0)
    }

    #[test]
    fn under_cap_allows_boot() {
        let mut c = controller();
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 5_000.0);
        match c.evaluate(&trace, t(3600.0)) {
            EnforcementAction::AllowBoot { nodes } => {
                // 5000 W headroom / 290 W per node = 17.
                assert_eq!(nodes, 17);
            }
            other => panic!("expected AllowBoot, got {other:?}"),
        }
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn over_cap_shuts_down() {
        let mut c = controller();
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 12_000.0);
        match c.evaluate(&trace, t(3600.0)) {
            EnforcementAction::ShutDown { nodes } => {
                // 2000 over / 290 = 6.9 → 7.
                assert_eq!(nodes, 7);
            }
            other => panic!("expected ShutDown, got {other:?}"),
        }
        assert_eq!(c.violations(), 1);
    }

    #[test]
    fn deadband_holds() {
        let mut c = controller();
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 10_100.0); // within 3% band
        assert_eq!(c.evaluate(&trace, t(3600.0)), EnforcementAction::Hold);
        // A violation is still counted (avg > cap) even though held.
        assert_eq!(c.violations(), 1);
    }

    #[test]
    fn short_spike_tolerated_by_window() {
        let mut c = controller();
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 8_000.0);
        trace.push(t(3500.0), 20_000.0); // 100 s spike in a 1800 s window
        trace.push(t(3600.0), 8_000.0);
        // Window [1800+..]: mostly 8 kW with a 100 s 20 kW burst →
        // average ≈ (1700·8k + 100·20k)/1800 ≈ 8.67 kW < cap.
        match c.evaluate(&trace, t(3600.0)) {
            EnforcementAction::AllowBoot { .. } => {}
            other => panic!("window should absorb the spike, got {other:?}"),
        }
    }

    #[test]
    fn sustained_overdraw_detected() {
        let mut c = controller();
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 8_000.0);
        trace.push(t(1000.0), 20_000.0); // sustained
        match c.evaluate(&trace, t(3600.0)) {
            EnforcementAction::ShutDown { .. } => {}
            other => panic!("expected ShutDown, got {other:?}"),
        }
    }

    #[test]
    fn traced_evaluation_records_node_delta() {
        use epa_obs::{CategoryMask, TraceBus, TraceEvent};
        let mut bus = TraceBus::new(CategoryMask::ALL, 16);
        let mut c = controller();
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 12_000.0);
        let action = c.evaluate_traced(&trace, t(3600.0), &mut bus);
        assert!(matches!(action, EnforcementAction::ShutDown { nodes: 7 }));
        let rec = bus.iter().next().unwrap();
        assert!(matches!(
            rec.event,
            TraceEvent::Enforcement {
                delta_nodes: -7,
                ..
            }
        ));
    }

    #[test]
    fn cap_reprogramming() {
        let mut c = controller();
        c.set_cap(5_000.0);
        assert_eq!(c.cap_watts(), 5_000.0);
        let mut trace = TimeSeries::new();
        trace.push(t(0.0), 6_000.0);
        assert!(matches!(
            c.evaluate(&trace, t(3600.0)),
            EnforcementAction::ShutDown { .. }
        ));
    }
}
