//! The component-interaction ledger (regenerates Figure 1).
//!
//! The survey's Figure 1 shows "interactions among multiple components
//! that make up a typical EPA JSRM solution": job scheduler, resource
//! manager, telemetry/monitoring, the hardware (nodes, processors,
//! memory, network, storage), and the physical plant (power delivery,
//! cooling). The ledger records every cross-component message as a typed
//! edge; the `figure1` experiment binary renders the resulting adjacency
//! matrix as the reproduction of the figure.

use epa_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The functional components of an EPA JSRM solution (Figure 1 boxes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Component {
    /// Batch job scheduler.
    JobScheduler,
    /// Resource manager.
    ResourceManager,
    /// Telemetry / monitoring infrastructure.
    Telemetry,
    /// Compute hardware (nodes, CPUs, memory, network).
    Hardware,
    /// Power delivery and cooling plant.
    Facility,
    /// Users (submission, reports).
    Users,
    /// Prediction / analytics services.
    Analytics,
}

impl Component {
    /// All components, in rendering order.
    pub const ALL: [Component; 7] = [
        Component::Users,
        Component::JobScheduler,
        Component::ResourceManager,
        Component::Telemetry,
        Component::Analytics,
        Component::Hardware,
        Component::Facility,
    ];

    /// Short label for matrix rendering.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Component::JobScheduler => "JS",
            Component::ResourceManager => "RM",
            Component::Telemetry => "TEL",
            Component::Hardware => "HW",
            Component::Facility => "FAC",
            Component::Users => "USR",
            Component::Analytics => "ANA",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The four functional categories of Figure 1 ("monitoring and control of
/// energy/power consumed by the resources, and their availability").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InteractionKind {
    /// Reading energy/power state (telemetry pull, sensor sample).
    PowerMonitor,
    /// Actuating energy/power (cap set, DVFS set, supply switch).
    PowerControl,
    /// Reading resource availability (node states, queue state).
    ResourceMonitor,
    /// Actuating resources (allocate, boot, shutdown, kill).
    ResourceControl,
}

impl InteractionKind {
    /// All kinds, in rendering order.
    pub const ALL: [InteractionKind; 4] = [
        InteractionKind::PowerMonitor,
        InteractionKind::PowerControl,
        InteractionKind::ResourceMonitor,
        InteractionKind::ResourceControl,
    ];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InteractionKind::PowerMonitor => "power-monitor",
            InteractionKind::PowerControl => "power-control",
            InteractionKind::ResourceMonitor => "resource-monitor",
            InteractionKind::ResourceControl => "resource-control",
        }
    }
}

/// A ledger of component interactions.
#[derive(Debug, Clone, Default)]
pub struct InteractionLedger {
    counts: BTreeMap<(Component, Component, InteractionKind), u64>,
    total: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl InteractionLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one interaction `from → to` of the given kind at `t`.
    pub fn record(&mut self, t: SimTime, from: Component, to: Component, kind: InteractionKind) {
        *self.counts.entry((from, to, kind)).or_insert(0) += 1;
        self.total += 1;
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = Some(t);
    }

    /// Total interactions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count on a specific edge.
    #[must_use]
    pub fn count(&self, from: Component, to: Component, kind: InteractionKind) -> u64 {
        self.counts.get(&(from, to, kind)).copied().unwrap_or(0)
    }

    /// Total traffic between two components, all kinds, both directions.
    #[must_use]
    pub fn edge_total(&self, a: Component, b: Component) -> u64 {
        self.counts
            .iter()
            .filter(|((f, t, _), _)| (*f == a && *t == b) || (*f == b && *t == a))
            .map(|(_, c)| c)
            .sum()
    }

    /// Totals per interaction kind (the four Figure 1 categories).
    #[must_use]
    pub fn kind_totals(&self) -> BTreeMap<InteractionKind, u64> {
        let mut out = BTreeMap::new();
        for ((_, _, k), c) in &self.counts {
            *out.entry(*k).or_insert(0) += c;
        }
        out
    }

    /// Renders the adjacency matrix (rows = from, cols = to, cells = total
    /// messages) — the textual reproduction of Figure 1.
    #[must_use]
    pub fn render_matrix(&self) -> String {
        let mut out = String::new();
        out.push_str("      ");
        for c in Component::ALL {
            out.push_str(&format!("{:>8}", c.label()));
        }
        out.push('\n');
        for from in Component::ALL {
            out.push_str(&format!("{:>6}", from.label()));
            for to in Component::ALL {
                let n: u64 = InteractionKind::ALL
                    .iter()
                    .map(|&k| self.count(from, to, k))
                    .sum();
                if n == 0 {
                    out.push_str(&format!("{:>8}", "."));
                } else {
                    out.push_str(&format!("{n:>8}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Encodes the full ledger (edge counts, total, first/last times).
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        fn comp_tag(c: Component) -> u8 {
            match c {
                Component::JobScheduler => 0,
                Component::ResourceManager => 1,
                Component::Telemetry => 2,
                Component::Hardware => 3,
                Component::Facility => 4,
                Component::Users => 5,
                Component::Analytics => 6,
            }
        }
        fn kind_tag(k: InteractionKind) -> u8 {
            match k {
                InteractionKind::PowerMonitor => 0,
                InteractionKind::PowerControl => 1,
                InteractionKind::ResourceMonitor => 2,
                InteractionKind::ResourceControl => 3,
            }
        }
        let counts: Vec<_> = self.counts.iter().collect();
        w.seq(&counts, |w, (&(from, to, kind), &n)| {
            w.u8(comp_tag(from));
            w.u8(comp_tag(to));
            w.u8(kind_tag(kind));
            w.u64(n);
        });
        w.u64(self.total);
        w.opt(self.first.as_ref(), |w, t| w.f64(t.as_secs()));
        w.opt(self.last.as_ref(), |w, t| w.f64(t.as_secs()));
    }

    /// Decodes a ledger written by [`InteractionLedger::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        use epa_simcore::snap::SnapshotError;
        fn comp(tag: u8) -> Result<Component, SnapshotError> {
            Ok(match tag {
                0 => Component::JobScheduler,
                1 => Component::ResourceManager,
                2 => Component::Telemetry,
                3 => Component::Hardware,
                4 => Component::Facility,
                5 => Component::Users,
                6 => Component::Analytics,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("unknown component tag {tag}"),
                    })
                }
            })
        }
        fn kind(tag: u8) -> Result<InteractionKind, SnapshotError> {
            Ok(match tag {
                0 => InteractionKind::PowerMonitor,
                1 => InteractionKind::PowerControl,
                2 => InteractionKind::ResourceMonitor,
                3 => InteractionKind::ResourceControl,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        detail: format!("unknown interaction tag {tag}"),
                    })
                }
            })
        }
        let counts: BTreeMap<(Component, Component, InteractionKind), u64> = r
            .seq(|r| Ok(((comp(r.u8()?)?, comp(r.u8()?)?, kind(r.u8()?)?), r.u64()?)))?
            .into_iter()
            .collect();
        let total = r.u64()?;
        let first = r.opt(|r| Ok(SimTime::from_secs(r.f64()?)))?;
        let last = r.opt(|r| Ok(SimTime::from_secs(r.f64()?)))?;
        Ok(InteractionLedger {
            counts,
            total,
            first,
            last,
        })
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &InteractionLedger) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
        self.total += other.total;
        self.first = match (self.first, other.first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last = match (self.last, other.last) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn record_and_count() {
        let mut l = InteractionLedger::new();
        l.record(
            t(1.0),
            Component::JobScheduler,
            Component::ResourceManager,
            InteractionKind::ResourceControl,
        );
        l.record(
            t(2.0),
            Component::JobScheduler,
            Component::ResourceManager,
            InteractionKind::ResourceControl,
        );
        l.record(
            t(3.0),
            Component::Telemetry,
            Component::Hardware,
            InteractionKind::PowerMonitor,
        );
        assert_eq!(l.total(), 3);
        assert_eq!(
            l.count(
                Component::JobScheduler,
                Component::ResourceManager,
                InteractionKind::ResourceControl
            ),
            2
        );
        assert_eq!(
            l.edge_total(Component::ResourceManager, Component::JobScheduler),
            2
        );
    }

    #[test]
    fn kind_totals_cover_categories() {
        let mut l = InteractionLedger::new();
        l.record(
            t(0.0),
            Component::Telemetry,
            Component::Hardware,
            InteractionKind::PowerMonitor,
        );
        l.record(
            t(0.0),
            Component::ResourceManager,
            Component::Hardware,
            InteractionKind::PowerControl,
        );
        l.record(
            t(0.0),
            Component::JobScheduler,
            Component::ResourceManager,
            InteractionKind::ResourceMonitor,
        );
        l.record(
            t(0.0),
            Component::ResourceManager,
            Component::Hardware,
            InteractionKind::ResourceControl,
        );
        let totals = l.kind_totals();
        assert_eq!(totals.len(), 4);
        for k in InteractionKind::ALL {
            assert_eq!(totals[&k], 1);
        }
    }

    #[test]
    fn matrix_renders_all_components() {
        let mut l = InteractionLedger::new();
        l.record(
            t(0.0),
            Component::Users,
            Component::JobScheduler,
            InteractionKind::ResourceControl,
        );
        let m = l.render_matrix();
        for c in Component::ALL {
            assert!(m.contains(c.label()), "missing {c}");
        }
        assert!(m.contains('1'));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = InteractionLedger::new();
        let mut b = InteractionLedger::new();
        a.record(
            t(1.0),
            Component::Users,
            Component::JobScheduler,
            InteractionKind::ResourceControl,
        );
        b.record(
            t(5.0),
            Component::Users,
            Component::JobScheduler,
            InteractionKind::ResourceControl,
        );
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(
            a.count(
                Component::Users,
                Component::JobScheduler,
                InteractionKind::ResourceControl
            ),
            2
        );
    }
}
