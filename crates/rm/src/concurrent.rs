//! Concurrent telemetry collection.
//!
//! Table II, CINECA research: "scalable power monitoring" — at a real
//! center thousands of node agents push readings to a collector that must
//! keep up. This module is that collector: producers (one per node shard)
//! push readings through a crossbeam channel; the consumer folds them into
//! the [`crate::monitoring::MonitoringHierarchy`] under a `parking_lot`
//! mutex, with a lock-free atomic counting total ingest.
//!
//! The key correctness property (tested): per-node readings are delivered
//! in timestamp order because each node belongs to exactly one producer
//! shard, so the hierarchy's monotone-append invariant holds no matter
//! how the shards interleave.

use crate::monitoring::MonitoringHierarchy;
use crossbeam::channel;
use epa_cluster::node::NodeId;
use epa_simcore::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One telemetry reading in flight.
#[derive(Debug, Clone, Copy)]
pub struct NodeReading {
    /// Source node.
    pub node: NodeId,
    /// Sample time.
    pub t: SimTime,
    /// Observed watts.
    pub watts: f64,
}

/// Collects sharded per-node reading streams concurrently.
///
/// `shards` is one `Vec<NodeReading>` per producer; every node must appear
/// in exactly one shard, and each shard must be internally time-ordered
/// per node (the natural output of a per-node sampler).
#[must_use]
pub fn collect_concurrent(
    machine: &str,
    shards: Vec<Vec<NodeReading>>,
    pue: f64,
) -> (MonitoringHierarchy, u64) {
    let hierarchy = Mutex::new(MonitoringHierarchy::new(pue));
    let ingested = AtomicU64::new(0);
    let (tx, rx) = channel::bounded::<NodeReading>(1024);

    crossbeam::thread::scope(|scope| {
        for shard in &shards {
            let tx = tx.clone();
            scope.spawn(move |_| {
                for &r in shard {
                    tx.send(r).expect("consumer alive");
                }
            });
        }
        drop(tx);
        // Consumer: single folder holding the lock briefly per batch.
        scope.spawn(|_| {
            let mut batch = Vec::with_capacity(256);
            loop {
                batch.clear();
                match rx.recv() {
                    Ok(first) => batch.push(first),
                    Err(_) => break,
                }
                while batch.len() < 256 {
                    match rx.try_recv() {
                        Ok(r) => batch.push(r),
                        Err(_) => break,
                    }
                }
                let mut h = hierarchy.lock();
                for r in &batch {
                    // Cross-shard interleaving can deliver node streams in
                    // any global order; per-node order is preserved by the
                    // sharding contract, which the hierarchy requires.
                    h.record(machine, r.node, r.t, r.watts);
                }
                ingested.fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
        });
    })
    .expect("collector threads join");

    (hierarchy.into_inner(), ingested.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_simcore::time::SimTime;

    fn shard(node: u32, n: usize, base_watts: f64) -> Vec<NodeReading> {
        (0..n)
            .map(|i| NodeReading {
                node: NodeId(node),
                t: SimTime::from_secs(i as f64),
                watts: base_watts + i as f64,
            })
            .collect()
    }

    #[test]
    fn concurrent_equals_sequential() {
        let shards: Vec<Vec<NodeReading>> = (0..8)
            .map(|n| shard(n, 200, 100.0 * f64::from(n + 1)))
            .collect();
        let flat: Vec<NodeReading> = shards.iter().flatten().copied().collect();

        let (concurrent, ingested) = collect_concurrent("m", shards, 1.2);
        assert_eq!(ingested, 1600);

        let mut sequential = MonitoringHierarchy::new(1.2);
        // Sequential reference: per node in order (flat iterates shard by
        // shard, so per-node order is kept).
        for r in &flat {
            sequential.record("m", r.node, r.t, r.watts);
        }
        let a = SimTime::from_secs(0.0);
        let b = SimTime::from_secs(199.0);
        use crate::monitoring::MonitorLevel;
        let e_con = concurrent.energy_joules(MonitorLevel::Machine, Some("m"), None, a, b);
        let e_seq = sequential.energy_joules(MonitorLevel::Machine, Some("m"), None, a, b);
        assert!((e_con - e_seq).abs() < 1e-9, "{e_con} vs {e_seq}");
        assert!(e_con > 0.0);
    }

    #[test]
    fn empty_shards_are_fine() {
        let (h, n) = collect_concurrent("m", vec![vec![], vec![]], 1.0);
        assert_eq!(n, 0);
        assert_eq!(h.current_it_watts(), 0.0);
    }

    #[test]
    fn many_small_shards() {
        let shards: Vec<Vec<NodeReading>> = (0..64).map(|n| shard(n, 5, 50.0)).collect();
        let (h, n) = collect_concurrent("m", shards, 1.0);
        assert_eq!(n, 64 * 5);
        // Latest value per node is 50 + 4 = 54 W × 64 nodes.
        assert!((h.current_it_watts() - 64.0 * 54.0).abs() < 1e-9);
    }
}
