//! PowerAPI-style application power measurement.
//!
//! Table II, STFC research: "Programmable interface (PowerAPI-based) for
//! application power measurements of code segments (with interface to
//! JSRM)." Sandia's Power API gives applications scoped counters: wrap a
//! code segment in start/stop marks and read back its energy.
//!
//! [`SectionProfiler`] implements that interface against the simulator's
//! exact node power traces: sections are `(name, start, end)` marks;
//! energy is the exact integral of the node trace over each section, and
//! nested sections are supported (a section's *exclusive* energy deducts
//! its children).

use epa_simcore::series::TimeSeries;
use epa_simcore::time::SimTime;
use serde::Serialize;
use thiserror::Error;

/// Errors from the profiling interface.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum ProfileError {
    /// `stop` was called with no matching open section.
    #[error("no open section to stop")]
    NoOpenSection,

    /// Sections left open at report time.
    #[error("{0} section(s) still open")]
    UnclosedSections(usize),
}

/// One measured code segment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SectionReport {
    /// Section name.
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Wall time of the section, seconds.
    pub duration_secs: f64,
    /// Total energy over the section (including children), joules.
    pub inclusive_joules: f64,
    /// Energy excluding child sections, joules.
    pub exclusive_joules: f64,
    /// Mean power over the section, watts.
    pub mean_watts: f64,
}

#[derive(Debug, Clone)]
struct Section {
    name: String,
    depth: usize,
    start: SimTime,
    end: Option<SimTime>,
    children: Vec<usize>,
}

/// Scoped power measurement over a node power trace.
#[derive(Debug, Default)]
pub struct SectionProfiler {
    sections: Vec<Section>,
    stack: Vec<usize>,
}

impl SectionProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a section at time `t`.
    pub fn start(&mut self, name: &str, t: SimTime) {
        let idx = self.sections.len();
        self.sections.push(Section {
            name: name.to_owned(),
            depth: self.stack.len(),
            start: t,
            end: None,
            children: Vec::new(),
        });
        if let Some(&parent) = self.stack.last() {
            self.sections[parent].children.push(idx);
        }
        self.stack.push(idx);
    }

    /// Closes the most recently opened section at time `t`.
    pub fn stop(&mut self, t: SimTime) -> Result<(), ProfileError> {
        let idx = self.stack.pop().ok_or(ProfileError::NoOpenSection)?;
        self.sections[idx].end = Some(t);
        Ok(())
    }

    /// Number of recorded (open or closed) sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Produces per-section energy reports against a node power trace.
    pub fn report(&self, trace: &TimeSeries) -> Result<Vec<SectionReport>, ProfileError> {
        if !self.stack.is_empty() {
            return Err(ProfileError::UnclosedSections(self.stack.len()));
        }
        let inclusive: Vec<f64> = self
            .sections
            .iter()
            .map(|s| trace.integrate(s.start, s.end.expect("closed")))
            .collect();
        Ok(self
            .sections
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let child_sum: f64 = s.children.iter().map(|&c| inclusive[c]).sum();
                let end = s.end.expect("closed");
                let dur = (end - s.start).as_secs();
                SectionReport {
                    name: s.name.clone(),
                    depth: s.depth,
                    duration_secs: dur,
                    inclusive_joules: inclusive[i],
                    exclusive_joules: (inclusive[i] - child_sum).max(0.0),
                    mean_watts: if dur > 0.0 { inclusive[i] / dur } else { 0.0 },
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn trace() -> TimeSeries {
        let mut tr = TimeSeries::new();
        tr.push(t(0.0), 100.0);
        tr.push(t(10.0), 300.0);
        tr.push(t(20.0), 100.0);
        tr
    }

    #[test]
    fn flat_sections_measure_exactly() {
        let mut p = SectionProfiler::new();
        p.start("init", t(0.0));
        p.stop(t(10.0)).unwrap();
        p.start("solve", t(10.0));
        p.stop(t(20.0)).unwrap();
        let r = p.report(&trace()).unwrap();
        assert_eq!(r.len(), 2);
        assert!((r[0].inclusive_joules - 1000.0).abs() < 1e-9);
        assert!((r[1].inclusive_joules - 3000.0).abs() < 1e-9);
        assert!((r[1].mean_watts - 300.0).abs() < 1e-9);
        assert_eq!(r[0].depth, 0);
    }

    #[test]
    fn nested_sections_compute_exclusive_energy() {
        let mut p = SectionProfiler::new();
        p.start("main", t(0.0));
        p.start("kernel", t(10.0));
        p.stop(t(20.0)).unwrap(); // kernel: 3000 J
        p.stop(t(30.0)).unwrap(); // main: 1000 + 3000 + 1000 = 5000 J
        let r = p.report(&trace()).unwrap();
        let main = &r[0];
        let kernel = &r[1];
        assert_eq!(kernel.depth, 1);
        assert!((main.inclusive_joules - 5000.0).abs() < 1e-9);
        assert!((main.exclusive_joules - 2000.0).abs() < 1e-9);
        assert!((kernel.exclusive_joules - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_stops_error() {
        let mut p = SectionProfiler::new();
        assert_eq!(p.stop(t(1.0)), Err(ProfileError::NoOpenSection));
        p.start("open", t(0.0));
        assert_eq!(p.report(&trace()), Err(ProfileError::UnclosedSections(1)));
    }

    #[test]
    fn zero_length_section() {
        let mut p = SectionProfiler::new();
        p.start("instant", t(5.0));
        p.stop(t(5.0)).unwrap();
        let r = p.report(&trace()).unwrap();
        assert_eq!(r[0].inclusive_joules, 0.0);
        assert_eq!(r[0].mean_watts, 0.0);
        assert!(!p.is_empty());
        assert_eq!(p.len(), 1);
    }
}
