//! Hierarchical power monitoring.
//!
//! Table II, STFC production: "Continuously collecting power and energy
//! system monitoring info, data center, machine, and job levels." The
//! hierarchy aggregates node-level traces into machine and data-center
//! rollups and answers level-scoped queries — the monitoring substrate
//! the survey's Figure 1 places under everything else.

use epa_cluster::node::NodeId;
use epa_simcore::series::TimeSeries;
use epa_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Monitoring levels, coarsest to finest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MonitorLevel {
    /// Whole data center (all machines + PUE overhead).
    DataCenter,
    /// One machine/system.
    Machine,
    /// One job (its allocated nodes during its window).
    Job,
}

/// Hierarchical monitoring store: machines → nodes → traces.
#[derive(Debug, Clone, Default)]
pub struct MonitoringHierarchy {
    /// machine name → node traces.
    machines: BTreeMap<String, BTreeMap<NodeId, TimeSeries>>,
    /// Facility overhead multiplier applied at the data-center level.
    pue: f64,
}

impl MonitoringHierarchy {
    /// Creates a hierarchy with a facility PUE for data-center rollups.
    #[must_use]
    pub fn new(pue: f64) -> Self {
        MonitoringHierarchy {
            machines: BTreeMap::new(),
            pue: pue.max(1.0),
        }
    }

    /// Records a node power change point.
    pub fn record(&mut self, machine: &str, node: NodeId, t: SimTime, watts: f64) {
        self.machines
            .entry(machine.to_owned())
            .or_default()
            .entry(node)
            .or_default()
            .push(t, watts);
    }

    /// Machines known to the hierarchy.
    pub fn machines(&self) -> impl Iterator<Item = &str> {
        self.machines.keys().map(String::as_str)
    }

    /// Energy at a given level over `[a, b]`, joules.
    ///
    /// - `DataCenter`: all machines, multiplied by PUE.
    /// - `Machine`: the named machine's nodes.
    /// - `Job`: the given node subset of the named machine.
    #[must_use]
    pub fn energy_joules(
        &self,
        level: MonitorLevel,
        machine: Option<&str>,
        nodes: Option<&[NodeId]>,
        a: SimTime,
        b: SimTime,
    ) -> f64 {
        match level {
            MonitorLevel::DataCenter => {
                self.machines
                    .values()
                    .flat_map(BTreeMap::values)
                    .map(|tr| tr.integrate(a, b))
                    .sum::<f64>()
                    * self.pue
            }
            MonitorLevel::Machine => {
                let Some(m) = machine.and_then(|m| self.machines.get(m)) else {
                    return 0.0;
                };
                m.values().map(|tr| tr.integrate(a, b)).sum()
            }
            MonitorLevel::Job => {
                let Some(m) = machine.and_then(|m| self.machines.get(m)) else {
                    return 0.0;
                };
                let Some(nodes) = nodes else { return 0.0 };
                nodes
                    .iter()
                    .filter_map(|n| m.get(n))
                    .map(|tr| tr.integrate(a, b))
                    .sum()
            }
        }
    }

    /// Current data-center IT draw (sum of latest node values), watts.
    #[must_use]
    pub fn current_it_watts(&self) -> f64 {
        self.machines
            .values()
            .flat_map(BTreeMap::values)
            .filter_map(TimeSeries::last)
            .map(|(_, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn hierarchy() -> MonitoringHierarchy {
        let mut h = MonitoringHierarchy::new(1.25);
        h.record("tsubame", NodeId(0), t(0.0), 100.0);
        h.record("tsubame", NodeId(1), t(0.0), 200.0);
        h.record("bluegene", NodeId(0), t(0.0), 50.0);
        h
    }

    #[test]
    fn machine_level_energy() {
        let h = hierarchy();
        let e = h.energy_joules(
            MonitorLevel::Machine,
            Some("tsubame"),
            None,
            t(0.0),
            t(10.0),
        );
        assert!((e - 3000.0).abs() < 1e-9);
        let e2 = h.energy_joules(
            MonitorLevel::Machine,
            Some("bluegene"),
            None,
            t(0.0),
            t(10.0),
        );
        assert!((e2 - 500.0).abs() < 1e-9);
        assert_eq!(
            h.energy_joules(MonitorLevel::Machine, Some("nope"), None, t(0.0), t(10.0)),
            0.0
        );
    }

    #[test]
    fn datacenter_applies_pue() {
        let h = hierarchy();
        let e = h.energy_joules(MonitorLevel::DataCenter, None, None, t(0.0), t(10.0));
        assert!((e - 3500.0 * 1.25).abs() < 1e-9);
    }

    #[test]
    fn job_level_subsets_nodes() {
        let h = hierarchy();
        let e = h.energy_joules(
            MonitorLevel::Job,
            Some("tsubame"),
            Some(&[NodeId(1)]),
            t(0.0),
            t(10.0),
        );
        assert!((e - 2000.0).abs() < 1e-9);
        // Missing node subset → 0.
        assert_eq!(
            h.energy_joules(MonitorLevel::Job, Some("tsubame"), None, t(0.0), t(10.0)),
            0.0
        );
    }

    #[test]
    fn current_draw_sums_latest() {
        let mut h = hierarchy();
        assert!((h.current_it_watts() - 350.0).abs() < 1e-9);
        h.record("tsubame", NodeId(0), t(5.0), 10.0);
        assert!((h.current_it_watts() - 260.0).abs() < 1e-9);
    }

    #[test]
    fn machines_listed() {
        let h = hierarchy();
        let names: Vec<&str> = h.machines().collect();
        assert_eq!(names, vec!["bluegene", "tsubame"]);
    }
}
