//! Virtual-machine splitting of compute nodes.
//!
//! Table I, Tokyo Tech production: "Uses virtual machines to split
//! compute nodes. (Complicates physical node shutdown.)" A [`VmHost`]
//! carves one physical node into VMs with core shares; the shutdown
//! complication is explicit: a host cannot power off while any VM is
//! active, so the shutdown policy must first migrate or drain VMs.

use epa_cluster::node::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use thiserror::Error;

/// Errors from VM management.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum VmError {
    /// Not enough free cores on the host.
    #[error("host {host} has {free} free cores, requested {requested}")]
    InsufficientCores {
        /// Host node.
        host: NodeId,
        /// Free cores.
        free: u32,
        /// Requested cores.
        requested: u32,
    },

    /// The VM id is unknown.
    #[error("unknown vm {0}")]
    UnknownVm(u64),

    /// The host still has active VMs.
    #[error("host {host} has {active} active VMs; cannot power off")]
    HostBusy {
        /// Host node.
        host: NodeId,
        /// Active VM count.
        active: usize,
    },
}

/// One virtual machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vm {
    /// VM id.
    pub id: u64,
    /// Cores assigned.
    pub cores: u32,
}

/// A physical node hosting VMs.
#[derive(Debug, Clone)]
pub struct VmHost {
    node: NodeId,
    total_cores: u32,
    vms: BTreeMap<u64, Vm>,
    next_id: u64,
}

impl VmHost {
    /// Creates a host with the node's core count.
    #[must_use]
    pub fn new(node: NodeId, total_cores: u32) -> Self {
        VmHost {
            node,
            total_cores,
            vms: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// The physical node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Cores not assigned to any VM.
    #[must_use]
    pub fn free_cores(&self) -> u32 {
        self.total_cores - self.vms.values().map(|v| v.cores).sum::<u32>()
    }

    /// Active VM count.
    #[must_use]
    pub fn active_vms(&self) -> usize {
        self.vms.len()
    }

    /// Spawns a VM with `cores`.
    pub fn spawn(&mut self, cores: u32) -> Result<u64, VmError> {
        let free = self.free_cores();
        if cores == 0 || cores > free {
            return Err(VmError::InsufficientCores {
                host: self.node,
                free,
                requested: cores,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.vms.insert(id, Vm { id, cores });
        Ok(id)
    }

    /// Destroys a VM, freeing its cores.
    pub fn destroy(&mut self, id: u64) -> Result<(), VmError> {
        self.vms
            .remove(&id)
            .map(|_| ())
            .ok_or(VmError::UnknownVm(id))
    }

    /// Checks whether the host may power off — the Tokyo Tech
    /// complication: only when no VMs remain.
    pub fn can_power_off(&self) -> Result<(), VmError> {
        if self.vms.is_empty() {
            Ok(())
        } else {
            Err(VmError::HostBusy {
                host: self.node,
                active: self.vms.len(),
            })
        }
    }

    /// Utilization of the host's cores by VMs, `[0,1]`.
    #[must_use]
    pub fn core_utilization(&self) -> f64 {
        1.0 - f64::from(self.free_cores()) / f64::from(self.total_cores.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_destroy() {
        let mut h = VmHost::new(NodeId(0), 32);
        let a = h.spawn(8).unwrap();
        let b = h.spawn(16).unwrap();
        assert_eq!(h.free_cores(), 8);
        assert_eq!(h.active_vms(), 2);
        assert!((h.core_utilization() - 0.75).abs() < 1e-12);
        h.destroy(a).unwrap();
        assert_eq!(h.free_cores(), 16);
        h.destroy(b).unwrap();
        assert_eq!(h.active_vms(), 0);
    }

    #[test]
    fn overcommit_rejected() {
        let mut h = VmHost::new(NodeId(0), 8);
        h.spawn(6).unwrap();
        let err = h.spawn(4).unwrap_err();
        assert!(matches!(
            err,
            VmError::InsufficientCores {
                free: 2,
                requested: 4,
                ..
            }
        ));
        assert!(h.spawn(0).is_err());
    }

    #[test]
    fn unknown_vm() {
        let mut h = VmHost::new(NodeId(0), 8);
        assert!(matches!(h.destroy(99), Err(VmError::UnknownVm(99))));
    }

    #[test]
    fn shutdown_blocked_by_active_vms() {
        let mut h = VmHost::new(NodeId(3), 32);
        let vm = h.spawn(4).unwrap();
        let err = h.can_power_off().unwrap_err();
        assert!(matches!(err, VmError::HostBusy { active: 1, .. }));
        h.destroy(vm).unwrap();
        assert!(h.can_power_off().is_ok());
    }

    #[test]
    fn vm_ids_unique() {
        let mut h = VmHost::new(NodeId(0), 32);
        let a = h.spawn(1).unwrap();
        h.destroy(a).unwrap();
        let b = h.spawn(1).unwrap();
        assert_ne!(a, b, "ids are never reused");
    }
}
