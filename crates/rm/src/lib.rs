//! # epa-rm — resource management
//!
//! The "resource manager" half of EPA JSRM: privileged control over the
//! physical machine, as §II-A of the survey defines it. Where `epa-sched`
//! decides *what* runs, this crate models *how* the machine is actuated
//! and observed:
//!
//! - [`states`] — the formal node lifecycle state machine with transition
//!   latencies and energies (boot, shutdown, drain, failure).
//! - [`actuators`] — the actuation interface (DVFS, caps, power on/off,
//!   VM operations) with a full audit log — the arrows of the survey's
//!   Figure 1.
//! - [`interactions`] — the component-interaction ledger that regenerates
//!   Figure 1: who talks to whom, how often.
//! - [`enforcement`] — windowed power-cap enforcement (Tokyo Tech's ~30
//!   minute window): boot/shutdown decisions from a windowed average.
//! - [`monitoring`] — hierarchical power monitoring at data-center /
//!   machine / job levels (STFC's production capability).
//! - [`reports`] — post-job user energy reports and efficiency marks
//!   (Tokyo Tech, JCAHPC production capabilities).
//! - [`vm`] — virtual-machine splitting of compute nodes and the shutdown
//!   complication it causes (Tokyo Tech).

pub mod actuators;
pub mod concurrent;
pub mod enforcement;
pub mod error;
pub mod interactions;
pub mod monitoring;
pub mod powerapi;
pub mod reports;
pub mod states;
pub mod vm;

pub use actuators::{Actuation, ActuatorLog};
pub use concurrent::{collect_concurrent, NodeReading};
pub use enforcement::EnforcementWindow;
pub use error::RmError;
pub use interactions::{Component, InteractionLedger};
pub use monitoring::MonitoringHierarchy;
pub use powerapi::{SectionProfiler, SectionReport};
pub use reports::{EfficiencyMark, UserEnergyReport};
pub use states::{NodeLifecycle, NodeState};
pub use vm::VmHost;
