//! The node lifecycle state machine.
//!
//! A formalization of what the `epa-sched` engine does operationally:
//! nodes move through Off → Booting → Idle → Busy (and Draining → Off,
//! Down) with per-transition latencies and energy costs. Policies that
//! toggle nodes (Mämmelä, Tokyo Tech) pay these costs; the E3 experiment
//! measures when shutdown pays off against them.

use epa_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use thiserror::Error;

/// Node lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeState {
    /// Powered off (BMC only).
    Off,
    /// Power-on self test and OS boot in progress.
    Booting,
    /// On, no job.
    #[default]
    Idle,
    /// Running a job.
    Busy,
    /// Finishing its job, will power down afterwards.
    Draining,
    /// Failed / administratively down.
    Down,
}

/// An illegal state transition.
#[derive(Debug, Error, PartialEq, Eq)]
#[error("illegal node transition {from:?} -> {to:?}")]
pub struct IllegalTransition {
    /// State before.
    pub from: NodeState,
    /// Requested state.
    pub to: NodeState,
}

/// Transition timing/energy parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionCosts {
    /// Boot duration.
    pub boot: SimDuration,
    /// Extra energy consumed by a boot beyond idle draw, joules.
    pub boot_energy_joules: f64,
    /// Shutdown duration.
    pub shutdown: SimDuration,
    /// Extra energy consumed by a shutdown, joules.
    pub shutdown_energy_joules: f64,
}

impl Default for TransitionCosts {
    fn default() -> Self {
        TransitionCosts {
            boot: SimDuration::from_mins(5.0),
            boot_energy_joules: 60_000.0, // ~200 W × 5 min
            shutdown: SimDuration::from_mins(2.0),
            shutdown_energy_joules: 12_000.0,
        }
    }
}

/// One node's lifecycle tracker.
#[derive(Debug, Clone, Default)]
pub struct NodeLifecycle {
    state: NodeState,
    transitions: u64,
    boots: u64,
    shutdowns: u64,
}

impl NodeLifecycle {
    /// Creates a lifecycle starting in `state`.
    #[must_use]
    pub fn new(state: NodeState) -> Self {
        NodeLifecycle {
            state,
            transitions: 0,
            boots: 0,
            shutdowns: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Number of transitions performed.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Boot count (Off→Booting transitions).
    #[must_use]
    pub fn boots(&self) -> u64 {
        self.boots
    }

    /// Shutdown count (transitions into Off).
    #[must_use]
    pub fn shutdowns(&self) -> u64 {
        self.shutdowns
    }

    /// Whether `from → to` is a legal transition.
    #[must_use]
    pub fn legal(from: NodeState, to: NodeState) -> bool {
        use NodeState::{Booting, Busy, Down, Draining, Idle, Off};
        matches!(
            (from, to),
            (Off, Booting)
                | (Booting, Idle)
                | (Idle, Busy)
                | (Busy, Idle)
                | (Busy, Draining)
                | (Draining, Off)
                | (Idle, Off)
                | (Idle, Draining)
                | (Draining, Idle) // drain cancelled
                | (_, Down)
                | (Down, Booting) // repair + boot
        ) && from != to
    }

    /// Performs a transition, enforcing legality.
    pub fn transition(&mut self, to: NodeState) -> Result<(), IllegalTransition> {
        if !Self::legal(self.state, to) {
            return Err(IllegalTransition {
                from: self.state,
                to,
            });
        }
        if to == NodeState::Booting {
            self.boots += 1;
        }
        if to == NodeState::Off {
            self.shutdowns += 1;
        }
        self.state = to;
        self.transitions += 1;
        Ok(())
    }

    /// Break-even idle duration for a shutdown: powering off only saves
    /// energy when the node would otherwise idle longer than
    /// `(boot_E + shutdown_E) / (idle_W − off_W)` plus the transition time
    /// itself (Mämmelä's criterion, used by E3).
    #[must_use]
    pub fn shutdown_breakeven(
        costs: &TransitionCosts,
        idle_watts: f64,
        off_watts: f64,
    ) -> SimDuration {
        let saving_rate = (idle_watts - off_watts).max(1e-9);
        let overhead_j = costs.boot_energy_joules + costs.shutdown_energy_joules;
        SimDuration::from_secs(overhead_j / saving_rate) + costs.boot + costs.shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_lifecycle() {
        let mut n = NodeLifecycle::new(NodeState::Off);
        n.transition(NodeState::Booting).unwrap();
        n.transition(NodeState::Idle).unwrap();
        n.transition(NodeState::Busy).unwrap();
        n.transition(NodeState::Idle).unwrap();
        n.transition(NodeState::Off).unwrap();
        assert_eq!(n.transitions(), 5);
        assert_eq!(n.boots(), 1);
        assert_eq!(n.shutdowns(), 1);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut n = NodeLifecycle::new(NodeState::Off);
        assert!(n.transition(NodeState::Busy).is_err());
        assert!(n.transition(NodeState::Idle).is_err());
        assert_eq!(n.state(), NodeState::Off);
        assert_eq!(n.transitions(), 0);
    }

    #[test]
    fn self_transition_illegal() {
        let mut n = NodeLifecycle::new(NodeState::Idle);
        assert!(n.transition(NodeState::Idle).is_err());
    }

    #[test]
    fn drain_and_cancel() {
        let mut n = NodeLifecycle::new(NodeState::Busy);
        n.transition(NodeState::Draining).unwrap();
        n.transition(NodeState::Idle).unwrap(); // cancelled
        n.transition(NodeState::Draining).unwrap();
        n.transition(NodeState::Off).unwrap();
        assert_eq!(n.shutdowns(), 1);
    }

    #[test]
    fn failure_from_anywhere_and_repair() {
        for s in [
            NodeState::Off,
            NodeState::Booting,
            NodeState::Idle,
            NodeState::Busy,
        ] {
            let mut n = NodeLifecycle::new(s);
            n.transition(NodeState::Down).unwrap();
            n.transition(NodeState::Booting).unwrap();
        }
    }

    #[test]
    fn breakeven_matches_hand_calculation() {
        let costs = TransitionCosts {
            boot: SimDuration::from_secs(300.0),
            boot_energy_joules: 60_000.0,
            shutdown: SimDuration::from_secs(120.0),
            shutdown_energy_joules: 12_000.0,
        };
        // (72 kJ) / (90-8 W) ≈ 878 s, + 420 s transitions.
        let be = NodeLifecycle::shutdown_breakeven(&costs, 90.0, 8.0);
        assert!((be.as_secs() - (72_000.0 / 82.0 + 420.0)).abs() < 1e-6);
    }

    #[test]
    fn breakeven_grows_when_saving_shrinks() {
        let costs = TransitionCosts::default();
        let a = NodeLifecycle::shutdown_breakeven(&costs, 90.0, 8.0);
        let b = NodeLifecycle::shutdown_breakeven(&costs, 30.0, 8.0);
        assert!(b > a);
    }
}
