//! Actuators: the control half of the monitoring/control loop.
//!
//! Every privileged operation the resource manager can perform on the
//! machine is an [`Actuation`]; the [`ActuatorLog`] records them with
//! timestamps and feeds the interaction ledger. This is the audit trail a
//! production site needs ("has there been much non-portable work?" — Q5c
//! asks precisely about such custom control paths).

use crate::interactions::{Component, InteractionKind, InteractionLedger};
use epa_cluster::node::NodeId;
use epa_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// A privileged control operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Actuation {
    /// Set a node's DVFS frequency (GHz).
    SetFrequency {
        /// Target node.
        node: NodeId,
        /// Frequency in GHz.
        ghz: f64,
    },
    /// Program a node power cap (watts).
    SetNodeCap {
        /// Target node.
        node: NodeId,
        /// Cap in watts; `None` clears.
        watts: Option<f64>,
    },
    /// Program the system-wide cap.
    SetSystemCap {
        /// Cap in watts; `None` clears.
        watts: Option<f64>,
    },
    /// Power a node on.
    PowerOn {
        /// Target node.
        node: NodeId,
    },
    /// Power a node off.
    PowerOff {
        /// Target node.
        node: NodeId,
    },
    /// Kill a job (emergency response).
    KillJob {
        /// Job id.
        job: u64,
    },
    /// Split a node into virtual machines (Tokyo Tech).
    SplitVm {
        /// Target node.
        node: NodeId,
        /// Number of VMs.
        vms: u32,
    },
    /// Switch facility supply source (RIKEN grid / gas turbine).
    SelectSupply {
        /// Index into the facility's supply list.
        source: usize,
    },
}

impl Actuation {
    /// The interaction-ledger classification of this actuation.
    #[must_use]
    pub fn kind(&self) -> InteractionKind {
        match self {
            Actuation::SetFrequency { .. }
            | Actuation::SetNodeCap { .. }
            | Actuation::SetSystemCap { .. }
            | Actuation::SelectSupply { .. } => InteractionKind::PowerControl,
            Actuation::PowerOn { .. }
            | Actuation::PowerOff { .. }
            | Actuation::KillJob { .. }
            | Actuation::SplitVm { .. } => InteractionKind::ResourceControl,
        }
    }

    /// The component this actuation targets.
    #[must_use]
    pub fn target(&self) -> Component {
        match self {
            Actuation::SelectSupply { .. } => Component::Facility,
            _ => Component::Hardware,
        }
    }
}

/// A timestamped actuation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuationRecord {
    /// When the actuation happened.
    pub t: SimTime,
    /// What was done.
    pub actuation: Actuation,
}

/// The actuation audit log.
#[derive(Debug, Clone, Default)]
pub struct ActuatorLog {
    records: Vec<ActuationRecord>,
}

impl ActuatorLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an actuation and mirrors it into the interaction ledger as
    /// a ResourceManager → target edge.
    pub fn record(&mut self, t: SimTime, actuation: Actuation, ledger: &mut InteractionLedger) {
        ledger.record(
            t,
            Component::ResourceManager,
            actuation.target(),
            actuation.kind(),
        );
        self.records.push(ActuationRecord { t, actuation });
    }

    /// All records in order.
    #[must_use]
    pub fn records(&self) -> &[ActuationRecord] {
        &self.records
    }

    /// Number of actuations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was actuated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of actuations matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&Actuation) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.actuation)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn actuations_classify_correctly() {
        assert_eq!(
            Actuation::SetFrequency {
                node: NodeId(0),
                ghz: 2.0
            }
            .kind(),
            InteractionKind::PowerControl
        );
        assert_eq!(
            Actuation::PowerOff { node: NodeId(0) }.kind(),
            InteractionKind::ResourceControl
        );
        assert_eq!(
            Actuation::SelectSupply { source: 1 }.target(),
            Component::Facility
        );
        assert_eq!(Actuation::KillJob { job: 7 }.target(), Component::Hardware);
    }

    #[test]
    fn log_mirrors_into_ledger() {
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        log.record(
            t(1.0),
            Actuation::SetSystemCap { watts: Some(1e6) },
            &mut ledger,
        );
        log.record(t(2.0), Actuation::PowerOff { node: NodeId(3) }, &mut ledger);
        assert_eq!(log.len(), 2);
        assert_eq!(ledger.total(), 2);
        assert_eq!(
            ledger.count(
                Component::ResourceManager,
                Component::Hardware,
                InteractionKind::PowerControl
            ),
            1
        );
    }

    #[test]
    fn count_matching_filters() {
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        for i in 0..5 {
            log.record(
                t(f64::from(i)),
                Actuation::PowerOff {
                    node: NodeId(i as u32),
                },
                &mut ledger,
            );
        }
        log.record(t(9.0), Actuation::PowerOn { node: NodeId(0) }, &mut ledger);
        assert_eq!(
            log.count_matching(|a| matches!(a, Actuation::PowerOff { .. })),
            5
        );
        assert!(!log.is_empty());
    }
}
