//! Actuators: the control half of the monitoring/control loop.
//!
//! Every privileged operation the resource manager can perform on the
//! machine is an [`Actuation`]; the [`ActuatorLog`] records them with
//! timestamps and feeds the interaction ledger. This is the audit trail a
//! production site needs ("has there been much non-portable work?" — Q5c
//! asks precisely about such custom control paths).
//!
//! Actuators are not reliable: CAPMC calls time out, RAPL writes bounce.
//! [`RetryingActuator`] wraps command execution in the retry-with-
//! exponential-backoff policy of [`epa_faults::ActuatorFaultConfig`],
//! logs every attempt to the audit log and interaction ledger, and
//! escalates: after N *consecutive* failed cap writes on one node it
//! reports the node for fencing (Trinity-style drain of a misbehaving
//! node).

use crate::interactions::{Component, InteractionKind, InteractionLedger};
use epa_cluster::node::NodeId;
use epa_faults::{execute_with_retry_traced, ActuatorFaultConfig};
use epa_obs::{TraceBus, TraceCategory, TraceEvent};
use epa_simcore::rng::SimRng;
use epa_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A privileged control operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Actuation {
    /// Set a node's DVFS frequency (GHz).
    SetFrequency {
        /// Target node.
        node: NodeId,
        /// Frequency in GHz.
        ghz: f64,
    },
    /// Program a node power cap (watts).
    SetNodeCap {
        /// Target node.
        node: NodeId,
        /// Cap in watts; `None` clears.
        watts: Option<f64>,
    },
    /// Program the system-wide cap.
    SetSystemCap {
        /// Cap in watts; `None` clears.
        watts: Option<f64>,
    },
    /// Power a node on.
    PowerOn {
        /// Target node.
        node: NodeId,
    },
    /// Power a node off.
    PowerOff {
        /// Target node.
        node: NodeId,
    },
    /// Kill a job (emergency response).
    KillJob {
        /// Job id.
        job: u64,
    },
    /// Split a node into virtual machines (Tokyo Tech).
    SplitVm {
        /// Target node.
        node: NodeId,
        /// Number of VMs.
        vms: u32,
    },
    /// Switch facility supply source (RIKEN grid / gas turbine).
    SelectSupply {
        /// Index into the facility's supply list.
        source: usize,
    },
}

impl Actuation {
    /// Encodes the actuation as a tag byte plus its fields.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        match self {
            Actuation::SetFrequency { node, ghz } => {
                w.u8(0);
                w.u32(node.0);
                w.f64(*ghz);
            }
            Actuation::SetNodeCap { node, watts } => {
                w.u8(1);
                w.u32(node.0);
                w.opt(watts.as_ref(), |w, &v| w.f64(v));
            }
            Actuation::SetSystemCap { watts } => {
                w.u8(2);
                w.opt(watts.as_ref(), |w, &v| w.f64(v));
            }
            Actuation::PowerOn { node } => {
                w.u8(3);
                w.u32(node.0);
            }
            Actuation::PowerOff { node } => {
                w.u8(4);
                w.u32(node.0);
            }
            Actuation::KillJob { job } => {
                w.u8(5);
                w.u64(*job);
            }
            Actuation::SplitVm { node, vms } => {
                w.u8(6);
                w.u32(node.0);
                w.u32(*vms);
            }
            Actuation::SelectSupply { source } => {
                w.u8(7);
                w.usize(*source);
            }
        }
    }

    /// Decodes an actuation written by [`Actuation::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        Ok(match r.u8()? {
            0 => Actuation::SetFrequency {
                node: NodeId(r.u32()?),
                ghz: r.f64()?,
            },
            1 => Actuation::SetNodeCap {
                node: NodeId(r.u32()?),
                watts: r.opt(epa_simcore::snap::SnapReader::f64)?,
            },
            2 => Actuation::SetSystemCap {
                watts: r.opt(epa_simcore::snap::SnapReader::f64)?,
            },
            3 => Actuation::PowerOn {
                node: NodeId(r.u32()?),
            },
            4 => Actuation::PowerOff {
                node: NodeId(r.u32()?),
            },
            5 => Actuation::KillJob { job: r.u64()? },
            6 => Actuation::SplitVm {
                node: NodeId(r.u32()?),
                vms: r.u32()?,
            },
            7 => Actuation::SelectSupply { source: r.usize()? },
            tag => {
                return Err(epa_simcore::snap::SnapshotError::Corrupt {
                    detail: format!("unknown actuation tag {tag}"),
                })
            }
        })
    }

    /// The interaction-ledger classification of this actuation.
    #[must_use]
    pub fn kind(&self) -> InteractionKind {
        match self {
            Actuation::SetFrequency { .. }
            | Actuation::SetNodeCap { .. }
            | Actuation::SetSystemCap { .. }
            | Actuation::SelectSupply { .. } => InteractionKind::PowerControl,
            Actuation::PowerOn { .. }
            | Actuation::PowerOff { .. }
            | Actuation::KillJob { .. }
            | Actuation::SplitVm { .. } => InteractionKind::ResourceControl,
        }
    }

    /// The component this actuation targets.
    #[must_use]
    pub fn target(&self) -> Component {
        match self {
            Actuation::SelectSupply { .. } => Component::Facility,
            _ => Component::Hardware,
        }
    }
}

/// A timestamped actuation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActuationRecord {
    /// When the actuation happened.
    pub t: SimTime,
    /// What was done.
    pub actuation: Actuation,
}

/// The actuation audit log.
#[derive(Debug, Clone, Default)]
pub struct ActuatorLog {
    records: Vec<ActuationRecord>,
}

impl ActuatorLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an actuation and mirrors it into the interaction ledger as
    /// a ResourceManager → target edge.
    pub fn record(&mut self, t: SimTime, actuation: Actuation, ledger: &mut InteractionLedger) {
        ledger.record(
            t,
            Component::ResourceManager,
            actuation.target(),
            actuation.kind(),
        );
        self.records.push(ActuationRecord { t, actuation });
    }

    /// All records in order.
    #[must_use]
    pub fn records(&self) -> &[ActuationRecord] {
        &self.records
    }

    /// Number of actuations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was actuated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of actuations matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&Actuation) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.actuation)).count()
    }

    /// Encodes the full audit log.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.seq(&self.records, |w, rec| {
            w.f64(rec.t.as_secs());
            rec.actuation.snapshot_into(w);
        });
    }

    /// Decodes a log written by [`ActuatorLog::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let records = r.seq(|r| {
            Ok(ActuationRecord {
                t: SimTime::from_secs(r.f64()?),
                actuation: Actuation::restore_from(r)?,
            })
        })?;
        Ok(ActuatorLog { records })
    }
}

/// Result of programming one command across a node set through the
/// retry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CapWriteReport {
    /// True when every node's command eventually succeeded.
    pub succeeded: bool,
    /// Total attempts made across all nodes (first tries + retries).
    pub attempts: u64,
    /// Worst-case accumulated backoff latency over the node set — the
    /// actuation latency the caller must pay before the command is live
    /// everywhere (per-node sequences run in parallel).
    pub total_delay: SimDuration,
    /// Nodes whose command failed after all retries.
    pub failed: Vec<NodeId>,
    /// Nodes that crossed the consecutive-failure threshold and must be
    /// fenced by the caller.
    pub fence: Vec<NodeId>,
}

/// An actuator front-end that executes unreliable commands with
/// retry/backoff, full attempt logging, and fence escalation.
#[derive(Debug, Clone)]
pub struct RetryingActuator {
    config: ActuatorFaultConfig,
    rng: SimRng,
    /// Consecutive failed cap writes per node index.
    consecutive_failures: BTreeMap<u32, u32>,
}

impl RetryingActuator {
    /// Creates an actuator over its own deterministic fault stream.
    #[must_use]
    pub fn new(config: ActuatorFaultConfig, seed: u64) -> Self {
        RetryingActuator {
            config,
            rng: SimRng::new(seed).stream("rm-actuator-faults"),
            consecutive_failures: BTreeMap::new(),
        }
    }

    /// The retry/escalation configuration.
    #[must_use]
    pub fn config(&self) -> &ActuatorFaultConfig {
        &self.config
    }

    /// Current consecutive-failure count for a node.
    #[must_use]
    pub fn consecutive_failures(&self, node: NodeId) -> u32 {
        self.consecutive_failures.get(&node.0).copied().unwrap_or(0)
    }

    /// Encodes the retry stream position and per-node escalation counters.
    /// The fault config is re-supplied at [`RetryingActuator::restore_from`].
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        let (seed, pos) = self.rng.snapshot_state();
        w.u64(seed);
        w.u64(pos);
        let failures: Vec<(u32, u32)> = self
            .consecutive_failures
            .iter()
            .map(|(&n, &c)| (n, c))
            .collect();
        w.seq(&failures, |w, &(n, c)| {
            w.u32(n);
            w.u32(c);
        });
    }

    /// Rebuilds an actuator at the exact stream position and escalation
    /// state written by [`RetryingActuator::snapshot_into`].
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
        config: ActuatorFaultConfig,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        let rng = SimRng::from_state(r.u64()?, r.u64()?);
        let consecutive_failures: BTreeMap<u32, u32> =
            r.seq(|r| Ok((r.u32()?, r.u32()?)))?.into_iter().collect();
        Ok(RetryingActuator {
            config,
            rng,
            consecutive_failures,
        })
    }

    /// Programs a per-node power cap (`watts`; `None` clears) on every
    /// node in `nodes`. Each node runs its own attempt/retry sequence;
    /// every attempt is recorded in `log` (and mirrored into `ledger`).
    /// Nodes whose consecutive-failure count reaches the fence threshold
    /// are returned in [`CapWriteReport::fence`] with their counters
    /// reset (the fence/repair cycle clears the fault).
    pub fn program_caps(
        &mut self,
        t: SimTime,
        nodes: &[NodeId],
        watts: Option<f64>,
        log: &mut ActuatorLog,
        ledger: &mut InteractionLedger,
    ) -> CapWriteReport {
        let mut bus = TraceBus::disabled();
        self.program_caps_traced(t, nodes, watts, log, ledger, &mut bus)
    }

    /// [`RetryingActuator::program_caps`] with decision tracing: per-node
    /// retry anomalies, fence escalations, and a summary
    /// [`TraceEvent::CapWrite`] are recorded on `bus`. RNG consumption,
    /// audit logging, and escalation are identical to the untraced call.
    pub fn program_caps_traced(
        &mut self,
        t: SimTime,
        nodes: &[NodeId],
        watts: Option<f64>,
        log: &mut ActuatorLog,
        ledger: &mut InteractionLedger,
        bus: &mut TraceBus,
    ) -> CapWriteReport {
        let mut report = CapWriteReport {
            succeeded: true,
            attempts: 0,
            total_delay: SimDuration::ZERO,
            failed: Vec::new(),
            fence: Vec::new(),
        };
        for &node in nodes {
            let r = execute_with_retry_traced(&self.config, &mut self.rng, t, node.0, bus);
            for _ in 0..r.attempts {
                log.record(t, Actuation::SetNodeCap { node, watts }, ledger);
            }
            report.attempts += u64::from(r.attempts);
            report.total_delay = report.total_delay.max(r.total_delay);
            if r.succeeded {
                self.consecutive_failures.remove(&node.0);
            } else {
                report.succeeded = false;
                report.failed.push(node);
                let count = self.consecutive_failures.entry(node.0).or_insert(0);
                *count += 1;
                if *count >= self.config.fence_after {
                    self.consecutive_failures.remove(&node.0);
                    report.fence.push(node);
                    if bus.enabled(TraceCategory::Actuation) {
                        bus.record(t, TraceEvent::NodeFenced { node: node.0 });
                    }
                }
            }
        }
        if bus.enabled(TraceCategory::Actuation) {
            bus.record(
                t,
                TraceEvent::CapWrite {
                    nodes: nodes.len() as u32,
                    watts: watts.unwrap_or(0.0),
                    attempts: report.attempts,
                    succeeded: report.succeeded,
                    delay_secs: report.total_delay.as_secs(),
                },
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn actuations_classify_correctly() {
        assert_eq!(
            Actuation::SetFrequency {
                node: NodeId(0),
                ghz: 2.0
            }
            .kind(),
            InteractionKind::PowerControl
        );
        assert_eq!(
            Actuation::PowerOff { node: NodeId(0) }.kind(),
            InteractionKind::ResourceControl
        );
        assert_eq!(
            Actuation::SelectSupply { source: 1 }.target(),
            Component::Facility
        );
        assert_eq!(Actuation::KillJob { job: 7 }.target(), Component::Hardware);
    }

    #[test]
    fn log_mirrors_into_ledger() {
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        log.record(
            t(1.0),
            Actuation::SetSystemCap { watts: Some(1e6) },
            &mut ledger,
        );
        log.record(t(2.0), Actuation::PowerOff { node: NodeId(3) }, &mut ledger);
        assert_eq!(log.len(), 2);
        assert_eq!(ledger.total(), 2);
        assert_eq!(
            ledger.count(
                Component::ResourceManager,
                Component::Hardware,
                InteractionKind::PowerControl
            ),
            1
        );
    }

    #[test]
    fn count_matching_filters() {
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        for i in 0..5 {
            log.record(
                t(f64::from(i)),
                Actuation::PowerOff {
                    node: NodeId(i as u32),
                },
                &mut ledger,
            );
        }
        log.record(t(9.0), Actuation::PowerOn { node: NodeId(0) }, &mut ledger);
        assert_eq!(
            log.count_matching(|a| matches!(a, Actuation::PowerOff { .. })),
            5
        );
        assert!(!log.is_empty());
    }

    fn fault_cfg(fail_prob: f64) -> ActuatorFaultConfig {
        ActuatorFaultConfig {
            fail_prob,
            max_retries: 2,
            backoff_base: SimDuration::from_secs(1.0),
            backoff_factor: 2.0,
            fence_after: 3,
        }
    }

    #[test]
    fn reliable_actuator_logs_one_attempt_per_node() {
        let mut act = RetryingActuator::new(fault_cfg(0.0), 7);
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let report = act.program_caps(t(5.0), &nodes, Some(200.0), &mut log, &mut ledger);
        assert!(report.succeeded);
        assert_eq!(report.attempts, 4);
        assert_eq!(report.total_delay, SimDuration::ZERO);
        assert!(report.failed.is_empty());
        assert!(report.fence.is_empty());
        assert_eq!(log.len(), 4);
        assert_eq!(ledger.total(), 4);
        assert_eq!(act.consecutive_failures(NodeId(0)), 0);
    }

    #[test]
    fn broken_actuator_fences_after_threshold() {
        let mut act = RetryingActuator::new(fault_cfg(1.0), 7);
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        let nodes = [NodeId(9)];
        for round in 1..=2u32 {
            let report = act.program_caps(t(1.0), &nodes, Some(150.0), &mut log, &mut ledger);
            assert!(!report.succeeded);
            assert_eq!(report.failed, vec![NodeId(9)]);
            assert!(report.fence.is_empty());
            // max_retries = 2 → 3 attempts per call, all logged.
            assert_eq!(report.attempts, 3);
            // Backoff 1s then 2s between the three attempts.
            assert_eq!(report.total_delay, SimDuration::from_secs(3.0));
            assert_eq!(act.consecutive_failures(NodeId(9)), round);
        }
        let report = act.program_caps(t(2.0), &nodes, Some(150.0), &mut log, &mut ledger);
        assert_eq!(report.fence, vec![NodeId(9)]);
        // Fencing resets the escalation counter.
        assert_eq!(act.consecutive_failures(NodeId(9)), 0);
        assert_eq!(log.len(), 9);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut act = RetryingActuator::new(fault_cfg(1.0), 7);
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        let nodes = [NodeId(2)];
        act.program_caps(t(1.0), &nodes, None, &mut log, &mut ledger);
        assert_eq!(act.consecutive_failures(NodeId(2)), 1);
        // Flip to a reliable channel; the next success must clear history.
        let mut fixed = RetryingActuator::new(fault_cfg(0.0), 7);
        fixed.consecutive_failures = act.consecutive_failures.clone();
        fixed.program_caps(t(2.0), &nodes, None, &mut log, &mut ledger);
        assert_eq!(fixed.consecutive_failures(NodeId(2)), 0);
    }

    #[test]
    fn traced_cap_write_records_summary_and_fences() {
        use epa_obs::{CategoryMask, TraceEvent};
        let mut bus = epa_obs::TraceBus::new(CategoryMask::ALL, 256);
        let mut act = RetryingActuator::new(fault_cfg(1.0), 7);
        let mut log = ActuatorLog::new();
        let mut ledger = InteractionLedger::new();
        let nodes = [NodeId(4)];
        for _ in 0..3 {
            act.program_caps_traced(t(1.0), &nodes, Some(150.0), &mut log, &mut ledger, &mut bus);
        }
        let events: Vec<&TraceEvent> = bus.iter().map(|r| &r.event).collect();
        // Each round: one ActuationRetry (exhausted), one CapWrite summary;
        // the third round adds the fence escalation before its summary.
        assert_eq!(events.len(), 7);
        assert!(matches!(
            events[0],
            TraceEvent::ActuationRetry {
                node: 4,
                succeeded: false,
                ..
            }
        ));
        assert!(matches!(
            events[1],
            TraceEvent::CapWrite {
                nodes: 1,
                succeeded: false,
                ..
            }
        ));
        assert!(matches!(events[5], TraceEvent::NodeFenced { node: 4 }));
        // The untraced wrapper draws the same RNG sequence.
        let untraced = {
            let mut act = RetryingActuator::new(fault_cfg(0.4), 3);
            let mut log = ActuatorLog::new();
            let mut ledger = InteractionLedger::new();
            let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
            act.program_caps(t(2.0), &nodes, Some(180.0), &mut log, &mut ledger)
        };
        let traced = {
            let mut act = RetryingActuator::new(fault_cfg(0.4), 3);
            let mut log = ActuatorLog::new();
            let mut ledger = InteractionLedger::new();
            let mut bus = epa_obs::TraceBus::new(CategoryMask::ALL, 256);
            let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
            act.program_caps_traced(t(2.0), &nodes, Some(180.0), &mut log, &mut ledger, &mut bus)
        };
        assert_eq!(untraced, traced);
    }

    #[test]
    fn actuator_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut act = RetryingActuator::new(fault_cfg(0.4), seed);
            let mut log = ActuatorLog::new();
            let mut ledger = InteractionLedger::new();
            let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
            let mut trace = Vec::new();
            for round in 0..8 {
                let r = act.program_caps(
                    t(f64::from(round)),
                    &nodes,
                    Some(180.0),
                    &mut log,
                    &mut ledger,
                );
                trace.push((r.attempts, r.failed.len(), r.fence.len()));
            }
            (trace, log.len())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
