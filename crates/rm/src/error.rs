//! Error types for resource management.

use thiserror::Error;

/// Errors from resource-management operations.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum RmError {
    /// An invalid configuration value.
    #[error("invalid resource-manager configuration: {0}")]
    InvalidConfig(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            RmError::InvalidConfig("bad window".into()).to_string(),
            "invalid resource-manager configuration: bad window"
        );
    }
}
