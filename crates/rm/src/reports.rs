//! Post-job user energy reports and efficiency marks.
//!
//! Two production capabilities from Tables I/II:
//! - Tokyo Tech: "Gives users mark on how well they used power and
//!   energy. Energy use provided to users at end of every job."
//! - JCAHPC: "Delivering post-job energy use reports to users."
//!
//! A report compares the job's measured energy to a reference (what the
//! same node-seconds would cost at the machine's nominal draw) and grades
//! the ratio: using much less than nominal earns an A; drawing above
//! nominal (power-virus behaviour) earns a D/E.

use epa_workload::job::JobId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The letter mark on a user energy report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EfficiencyMark {
    /// Energy ≤ 60% of nominal.
    A,
    /// ≤ 85%.
    B,
    /// ≤ 105% (around nominal).
    C,
    /// ≤ 120%.
    D,
    /// Above 120% of nominal.
    E,
}

impl EfficiencyMark {
    /// Grades an energy ratio (measured / nominal reference).
    #[must_use]
    pub fn from_ratio(ratio: f64) -> Self {
        if ratio <= 0.60 {
            EfficiencyMark::A
        } else if ratio <= 0.85 {
            EfficiencyMark::B
        } else if ratio <= 1.05 {
            EfficiencyMark::C
        } else if ratio <= 1.20 {
            EfficiencyMark::D
        } else {
            EfficiencyMark::E
        }
    }
}

impl fmt::Display for EfficiencyMark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            EfficiencyMark::A => 'A',
            EfficiencyMark::B => 'B',
            EfficiencyMark::C => 'C',
            EfficiencyMark::D => 'D',
            EfficiencyMark::E => 'E',
        };
        write!(f, "{c}")
    }
}

/// A post-job energy report delivered to the submitting user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserEnergyReport {
    /// Job id.
    pub job: JobId,
    /// Submitting user.
    pub user: u32,
    /// Nodes used.
    pub nodes: u32,
    /// Execution seconds.
    pub run_secs: f64,
    /// Measured energy, joules.
    pub energy_joules: f64,
    /// Reference energy at nominal draw, joules.
    pub reference_joules: f64,
    /// The mark.
    pub mark: EfficiencyMark,
}

impl UserEnergyReport {
    /// Builds a report from measurements.
    ///
    /// `nominal_watts_per_node` is the machine's per-node nominal draw —
    /// the reference users are graded against.
    #[must_use]
    pub fn new(
        job: JobId,
        user: u32,
        nodes: u32,
        run_secs: f64,
        energy_joules: f64,
        nominal_watts_per_node: f64,
    ) -> Self {
        let reference = nominal_watts_per_node * f64::from(nodes) * run_secs;
        let ratio = if reference > 0.0 {
            energy_joules / reference
        } else {
            1.0
        };
        UserEnergyReport {
            job,
            user,
            nodes,
            run_secs,
            energy_joules,
            reference_joules: reference,
            mark: EfficiencyMark::from_ratio(ratio),
        }
    }

    /// Energy in kWh for human-readable output.
    #[must_use]
    pub fn energy_kwh(&self) -> f64 {
        self.energy_joules / 3.6e6
    }

    /// Renders the end-of-job text a user would see.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "job {} (user {}): {} nodes × {:.0} s — {:.2} kWh ({:.0}% of nominal) — mark {}",
            self.job,
            self.user,
            self.nodes,
            self.run_secs,
            self.energy_kwh(),
            100.0 * self.energy_joules / self.reference_joules.max(1e-9),
            self.mark
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_boundaries() {
        assert_eq!(EfficiencyMark::from_ratio(0.5), EfficiencyMark::A);
        assert_eq!(EfficiencyMark::from_ratio(0.60), EfficiencyMark::A);
        assert_eq!(EfficiencyMark::from_ratio(0.61), EfficiencyMark::B);
        assert_eq!(EfficiencyMark::from_ratio(1.0), EfficiencyMark::C);
        assert_eq!(EfficiencyMark::from_ratio(1.1), EfficiencyMark::D);
        assert_eq!(EfficiencyMark::from_ratio(1.5), EfficiencyMark::E);
    }

    #[test]
    fn report_grades_against_nominal() {
        // 2 nodes × 100 s at 290 W nominal → reference 58 kJ.
        let r = UserEnergyReport::new(JobId(1), 7, 2, 100.0, 29_000.0, 290.0);
        assert!((r.reference_joules - 58_000.0).abs() < 1e-9);
        assert_eq!(r.mark, EfficiencyMark::A);
        let r2 = UserEnergyReport::new(JobId(2), 7, 2, 100.0, 58_000.0, 290.0);
        assert_eq!(r2.mark, EfficiencyMark::C);
        let r3 = UserEnergyReport::new(JobId(3), 7, 2, 100.0, 90_000.0, 290.0);
        assert_eq!(r3.mark, EfficiencyMark::E);
    }

    #[test]
    fn render_contains_essentials() {
        let r = UserEnergyReport::new(JobId(42), 3, 4, 3600.0, 4.0 * 200.0 * 3600.0, 290.0);
        let text = r.render();
        assert!(text.contains("j42"));
        assert!(text.contains("user 3"));
        assert!(text.contains("4 nodes"));
        assert!(text.contains("mark B"));
    }

    #[test]
    fn kwh_conversion() {
        let r = UserEnergyReport::new(JobId(1), 0, 1, 3600.0, 3.6e6, 290.0);
        assert!((r.energy_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_runtime_defensive() {
        let r = UserEnergyReport::new(JobId(1), 0, 1, 0.0, 0.0, 290.0);
        assert_eq!(r.mark, EfficiencyMark::C);
    }
}
