//! Error types for the machine model.

use thiserror::Error;

/// Errors from allocation and system construction.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum ClusterError {
    /// Not enough free nodes to satisfy an allocation.
    #[error("insufficient nodes: requested {requested}, free {free}")]
    InsufficientNodes {
        /// Nodes requested.
        requested: u32,
        /// Nodes free at the time of the request.
        free: u32,
    },

    /// A malformed request (e.g. zero nodes).
    #[error("invalid request: {0}")]
    InvalidRequest(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ClusterError::InsufficientNodes {
            requested: 10,
            free: 3,
        };
        assert_eq!(e.to_string(), "insufficient nodes: requested 10, free 3");
    }
}
