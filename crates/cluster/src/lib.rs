//! # epa-cluster — HPC machine model
//!
//! Describes the hardware the surveyed centers run: nodes grouped into
//! cabinets, wired by an interconnect topology, and fed by a facility
//! layout of PDUs and chillers.
//!
//! Survey relevance:
//! - Q2(c) asks each center for cabinets/nodes/cores, node architecture and
//!   interconnect — [`SystemSpec`] captures exactly those fields.
//! - Q6 asks about topology-aware task allocation — [`topology`] provides
//!   hop-distance metrics and [`alloc`] provides a topology-aware allocator
//!   next to the first-fit/contiguous baselines.
//! - CEA's "layout logic" (know which PDUs/chillers a node depends on and
//!   avoid scheduling onto them during maintenance) is modeled by
//!   [`layout::FacilityLayout`].

pub mod alloc;
pub mod error;
pub mod layout;
pub mod node;
pub mod shard;
pub mod system;
pub mod topology;

pub use alloc::{AllocStrategy, Allocator};
pub use error::ClusterError;
pub use layout::{ChillerId, FacilityLayout, MaintenanceWindow, PduId};
pub use node::{CpuSpec, NodeId, NodeSpec};
pub use shard::ShardTopology;
pub use system::{System, SystemSpec};
pub use topology::Topology;
