//! Cabinet-aligned shard topology for partitioned simulation.
//!
//! A [`ShardTopology`] splits the dense node-id space `0..total` into
//! contiguous shards along cabinet boundaries: a cabinet (the correlated
//! failure domain, the PDU unit, the unit the survey's Q2(c) inventories)
//! is never split across shards, so every domain-level action lands in
//! exactly one shard. Shard sizes differ by at most one cabinet.
//!
//! The partition is a pure function of `(total, nodes_per_cabinet,
//! shards)` — shard membership never depends on run state, which is what
//! lets a sharded engine produce byte-identical results at any shard
//! count: sharding moves *where* work is staged, never *what* happens.

use crate::node::NodeId;

/// A contiguous, cabinet-aligned partition of node ids `0..total`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTopology {
    total: u32,
    /// Shard boundaries: shard `i` owns ids `bounds[i]..bounds[i + 1]`.
    /// `bounds[0] == 0` and `*bounds.last() == total`.
    bounds: Vec<u32>,
}

impl ShardTopology {
    /// Builds a topology of (at most) `shards` shards over `total` nodes
    /// grouped into cabinets of `nodes_per_cabinet`.
    ///
    /// The shard count is clamped to the cabinet count (a shard owns at
    /// least one whole cabinet) and to at least 1. Cabinets are dealt to
    /// shards as evenly as possible, earlier shards taking the remainder.
    #[must_use]
    pub fn cabinet_aligned(total: u32, nodes_per_cabinet: u32, shards: u32) -> Self {
        let npc = nodes_per_cabinet.max(1);
        let cabinets = total.div_ceil(npc).max(1);
        let shards = shards.clamp(1, cabinets);
        let per = cabinets / shards;
        let extra = cabinets % shards;
        let mut bounds = Vec::with_capacity(shards as usize + 1);
        let mut cab = 0u32;
        bounds.push(0);
        for s in 0..shards {
            cab += per + u32::from(s < extra);
            bounds.push((cab * npc).min(total));
        }
        ShardTopology { total, bounds }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> u32 {
        (self.bounds.len() - 1) as u32
    }

    /// Total nodes covered.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    /// Panics if `node` is outside `0..total`.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> u32 {
        assert!(node.0 < self.total, "node {} outside topology", node.0);
        // partition_point returns the count of bounds <= node.0 among
        // bounds[1..]; that count is exactly the owning shard index.
        self.bounds[1..].partition_point(|&b| b <= node.0) as u32
    }

    /// Half-open id range `lo..hi` owned by `shard`.
    #[must_use]
    pub fn range(&self, shard: u32) -> (u32, u32) {
        let s = shard as usize;
        (self.bounds[s], self.bounds[s + 1])
    }

    /// Checks the structural shard invariant: the ranges cover `0..total`
    /// exactly once — no node unowned, no node owned by two shards.
    /// Pure (no engine state); the engine calls it behind `debug_assert!`.
    #[must_use]
    pub fn is_partition(&self) -> bool {
        self.bounds.first() == Some(&0)
            && self.bounds.last() == Some(&self.total)
            && self.bounds.windows(2).all(|w| w[0] < w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_over_cabinets() {
        // 4 cabinets x 8 nodes, 4 shards: one cabinet each.
        let t = ShardTopology::cabinet_aligned(32, 8, 4);
        assert_eq!(t.shards(), 4);
        assert!(t.is_partition());
        assert_eq!(t.range(0), (0, 8));
        assert_eq!(t.range(3), (24, 32));
        assert_eq!(t.shard_of(NodeId(0)), 0);
        assert_eq!(t.shard_of(NodeId(7)), 0);
        assert_eq!(t.shard_of(NodeId(8)), 1);
        assert_eq!(t.shard_of(NodeId(31)), 3);
    }

    #[test]
    fn uneven_cabinet_counts_stay_aligned() {
        // 5 cabinets x 4 nodes, 2 shards: 3 + 2 cabinets.
        let t = ShardTopology::cabinet_aligned(20, 4, 2);
        assert!(t.is_partition());
        assert_eq!(t.range(0), (0, 12));
        assert_eq!(t.range(1), (12, 20));
        // No shard boundary cuts a cabinet.
        for s in 0..t.shards() {
            let (lo, hi) = t.range(s);
            assert_eq!(lo % 4, 0);
            assert!(hi % 4 == 0 || hi == 20);
        }
    }

    #[test]
    fn shard_count_clamps_to_cabinets() {
        let t = ShardTopology::cabinet_aligned(32, 8, 16);
        assert_eq!(t.shards(), 4, "cannot have more shards than cabinets");
        assert!(t.is_partition());
        let one = ShardTopology::cabinet_aligned(32, 8, 0);
        assert_eq!(one.shards(), 1);
        assert_eq!(one.range(0), (0, 32));
    }

    #[test]
    fn ragged_last_cabinet_is_covered() {
        // 3 cabinets of 16 but only 40 nodes: last cabinet is half-full.
        let t = ShardTopology::cabinet_aligned(40, 16, 3);
        assert!(t.is_partition());
        assert_eq!(t.shard_of(NodeId(39)), t.shards() - 1);
        let covered: u32 = (0..t.shards())
            .map(|s| {
                let (lo, hi) = t.range(s);
                hi - lo
            })
            .sum();
        assert_eq!(covered, 40);
    }

    #[test]
    fn every_node_owned_exactly_once() {
        for shards in [1u32, 2, 3, 4, 7, 16] {
            let t = ShardTopology::cabinet_aligned(112, 16, shards);
            assert!(t.is_partition(), "shards={shards}");
            for n in 0..112u32 {
                let s = t.shard_of(NodeId(n));
                let (lo, hi) = t.range(s);
                assert!(lo <= n && n < hi, "node {n} misowned by shard {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_node_panics() {
        let t = ShardTopology::cabinet_aligned(8, 8, 1);
        let _ = t.shard_of(NodeId(8));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For arbitrary machine shapes and shard requests the result is
        /// always a cabinet-aligned exact partition.
        #[test]
        fn always_a_partition(
            cabinets in 1u32..64,
            npc in 1u32..32,
            shards in 0u32..96,
            ragged in 0u32..32,
        ) {
            let total = (cabinets * npc).saturating_sub(ragged.min(npc - 1)).max(1);
            let t = ShardTopology::cabinet_aligned(total, npc, shards);
            prop_assert!(t.is_partition());
            prop_assert!(t.shards() >= 1);
            for s in 0..t.shards() {
                let (lo, hi) = t.range(s);
                prop_assert!(lo % npc == 0, "shard {s} starts mid-cabinet");
                prop_assert!(hi % npc == 0 || hi == total);
            }
            // Spot-check ownership agreement at the boundaries.
            for s in 0..t.shards() {
                let (lo, hi) = t.range(s);
                prop_assert_eq!(t.shard_of(NodeId(lo)), s);
                prop_assert_eq!(t.shard_of(NodeId(hi - 1)), s);
            }
        }
    }
}
