//! Node allocation strategies.
//!
//! The allocator owns the free/busy partition of a system's nodes and
//! hands out node sets to the scheduler. Besides the first-fit baseline it
//! implements the contiguous and topology-aware placements that survey
//! question Q6 asks about: topology-aware allocation reduces the average
//! pairwise hop distance of a job's nodes, which shortens communication
//! phases and thereby *indirectly* reduces energy-to-solution — the exact
//! mechanism Q6's rationale describes.
//!
//! The free set is stored as maximal runs of consecutive node ids
//! (`start → len`) with a `(len, start)` mirror for best-fit, so
//! allocation is O(log n + alloc size) and the per-node `BTreeSet` walks
//! of the original implementation are gone: first-fit consumes run
//! prefixes, contiguous best-fit is one range query on the mirror, and
//! release coalesces each node back into its neighbours in O(log n).
//! Observable behaviour (which nodes each strategy picks, tie-breaks,
//! error cases, drain semantics) is identical to the old set-based code —
//! property-tested against a model of it below.
//!
//! Invariant (property-tested): a node is never allocated to two jobs at
//! once, and release returns exactly the allocated set.

use crate::error::ClusterError;
use crate::node::NodeId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Placement strategy for picking nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocStrategy {
    /// Lowest-numbered free nodes (the classic default).
    #[default]
    FirstFit,
    /// The contiguous run of free nodes with the smallest span that fits;
    /// falls back to first-fit when no contiguous run exists.
    Contiguous,
    /// Greedy topology-aware packing: grow the allocation around a seed
    /// node, always taking the free node closest (in hop distance) to the
    /// already-chosen set.
    TopologyAware,
}

/// Tracks which nodes are free, allocated, or administratively unavailable.
#[derive(Debug, Clone)]
pub struct Allocator {
    total: u32,
    /// Maximal runs of consecutive free node ids: `start → len`. No two
    /// runs touch or overlap.
    free_runs: BTreeMap<u32, u32>,
    /// Mirror of `free_runs` keyed `(len, start)` — best-fit is one range
    /// query instead of a scan.
    runs_by_len: BTreeSet<(u32, u32)>,
    free_count: usize,
    /// Dense busy flags indexed by node id.
    busy: Vec<bool>,
    busy_count: usize,
    unavailable: BTreeSet<NodeId>,
    strategy: AllocStrategy,
    topology: Topology,
}

impl Allocator {
    /// Creates an allocator over nodes `0..total`, all free.
    #[must_use]
    pub fn new(total: u32, strategy: AllocStrategy, topology: Topology) -> Self {
        let mut a = Allocator {
            total,
            free_runs: BTreeMap::new(),
            runs_by_len: BTreeSet::new(),
            free_count: total as usize,
            busy: vec![false; total as usize],
            busy_count: 0,
            unavailable: BTreeSet::new(),
            strategy,
            topology,
        };
        if total > 0 {
            a.run_insert(0, total);
        }
        a
    }

    /// Total number of nodes managed.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of currently free (allocatable) nodes.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Number of nodes currently allocated to jobs.
    #[must_use]
    pub fn busy_count(&self) -> usize {
        self.busy_count
    }

    /// Number of administratively unavailable nodes (off, maintenance).
    #[must_use]
    pub fn unavailable_count(&self) -> usize {
        self.unavailable.len()
    }

    /// The placement strategy in use.
    #[must_use]
    pub fn strategy(&self) -> AllocStrategy {
        self.strategy
    }

    /// True if `node` is currently free.
    #[must_use]
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free_runs
            .range(..=node.0)
            .next_back()
            .is_some_and(|(&start, &len)| node.0 < start + len)
    }

    /// True if `node` is currently allocated.
    #[must_use]
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.busy.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// Iterates over the free set in ascending order.
    pub fn free_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.free_runs
            .iter()
            .flat_map(|(&start, &len)| (start..start + len).map(NodeId))
    }

    /// Iterates over the busy set in ascending order.
    pub fn busy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.busy
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// The maximal free runs intersected with `[lo, hi)`, as
    /// `(start, len)` pairs in ascending order — a shard's view of its
    /// slice of the free-run structure. A run straddling the interval
    /// boundary is clipped to it. O(log n + runs-in-range).
    #[must_use]
    pub fn free_runs_in(&self, lo: u32, hi: u32) -> Vec<(u32, u32)> {
        if lo >= hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        // A run starting before `lo` may still reach into the interval.
        if let Some((&start, &len)) = self.free_runs.range(..lo).next_back() {
            if start + len > lo {
                out.push((lo, (start + len).min(hi) - lo));
            }
        }
        for (&start, &len) in self.free_runs.range(lo..hi) {
            out.push((start, len.min(hi - start)));
        }
        out
    }

    /// Number of free nodes with ids in `[lo, hi)`. Summed over a shard
    /// partition this reproduces [`Allocator::free_count`] exactly — the
    /// cross-check a sharded engine's invariant checker runs.
    #[must_use]
    pub fn free_count_in(&self, lo: u32, hi: u32) -> usize {
        self.free_runs_in(lo, hi)
            .iter()
            .map(|&(_, len)| len as usize)
            .sum()
    }

    // ---- snapshot -----------------------------------------------------

    /// Encodes the allocator's dynamic state: free runs, busy flags, and
    /// the unavailable set. Strategy and topology are configuration and
    /// must be re-supplied at [`Allocator::restore_from`]; the `(len,
    /// start)` mirror and the counts are derived, so they are rebuilt
    /// rather than stored.
    pub fn snapshot_into(&self, w: &mut epa_simcore::snap::SnapWriter) {
        w.u32(self.total);
        let runs: Vec<(u32, u32)> = self.free_runs.iter().map(|(&s, &l)| (s, l)).collect();
        w.seq(&runs, |w, &(s, l)| {
            w.u32(s);
            w.u32(l);
        });
        w.seq(&self.busy, |w, &b| w.bool(b));
        let unavailable: Vec<u32> = self.unavailable.iter().map(|n| n.0).collect();
        w.seq(&unavailable, |w, &n| w.u32(n));
    }

    /// Decodes an allocator written by [`Allocator::snapshot_into`],
    /// rebuilding the best-fit mirror and the free/busy counts.
    pub fn restore_from(
        r: &mut epa_simcore::snap::SnapReader<'_>,
        strategy: AllocStrategy,
        topology: Topology,
    ) -> Result<Self, epa_simcore::snap::SnapshotError> {
        use epa_simcore::snap::SnapshotError;
        let total = r.u32()?;
        let runs = r.seq(|r| Ok((r.u32()?, r.u32()?)))?;
        let busy: Vec<bool> = r.seq(epa_simcore::snap::SnapReader::bool)?;
        let unavailable: BTreeSet<NodeId> = r.seq(|r| Ok(NodeId(r.u32()?)))?.into_iter().collect();
        if busy.len() != total as usize {
            return Err(SnapshotError::Corrupt {
                detail: format!("busy flags {} != total nodes {total}", busy.len()),
            });
        }
        let mut free_runs = BTreeMap::new();
        let mut runs_by_len = BTreeSet::new();
        let mut free_count = 0usize;
        for (start, len) in runs {
            let end = start.checked_add(len).filter(|&e| e <= total);
            if len == 0 || end.is_none() || free_runs.insert(start, len).is_some() {
                return Err(SnapshotError::Corrupt {
                    detail: format!("invalid free run ({start},{len}) over {total} nodes"),
                });
            }
            runs_by_len.insert((len, start));
            free_count += len as usize;
        }
        let busy_count = busy.iter().filter(|&&b| b).count();
        Ok(Allocator {
            total,
            free_runs,
            runs_by_len,
            free_count,
            busy,
            busy_count,
            unavailable,
            strategy,
            topology,
        })
    }

    // ---- free-run structure maintenance -------------------------------

    fn run_insert(&mut self, start: u32, len: u32) {
        debug_assert!(len > 0);
        self.free_runs.insert(start, len);
        self.runs_by_len.insert((len, start));
    }

    fn run_remove(&mut self, start: u32, len: u32) {
        let removed = self.free_runs.remove(&start);
        debug_assert_eq!(removed, Some(len));
        self.runs_by_len.remove(&(len, start));
    }

    /// Removes `k` consecutive free ids starting at `s`. The span lies in
    /// a single maximal run by construction (its ids are consecutive and
    /// all free). O(log n).
    fn remove_free_span(&mut self, s: u32, k: u32) {
        let (&start, &len) = self
            .free_runs
            .range(..=s)
            .next_back()
            .expect("span must lie in a free run");
        debug_assert!(s >= start && s + k <= start + len, "span exceeds its run");
        self.run_remove(start, len);
        if s > start {
            self.run_insert(start, s - start);
        }
        if s + k < start + len {
            self.run_insert(s + k, start + len - (s + k));
        }
        self.free_count -= k as usize;
    }

    /// Returns `k` consecutive non-free ids starting at `s` to the free
    /// set, coalescing with both neighbouring runs. O(log n) per span —
    /// releasing a whole contiguous allocation costs one coalesce, not
    /// one per node.
    fn insert_free_span(&mut self, s: u32, k: u32) {
        debug_assert!(k > 0);
        debug_assert!(
            !self.is_free(NodeId(s)) && !self.is_free(NodeId(s + k - 1)),
            "span already free"
        );
        let mut start = s;
        let mut len = k;
        if let Some((&ls, &ll)) = self.free_runs.range(..s).next_back() {
            if ls + ll == s {
                self.run_remove(ls, ll);
                start = ls;
                len += ll;
            }
        }
        if let Some((&rs, &rl)) = self.free_runs.range(s + k..).next() {
            if rs == s + k {
                self.run_remove(rs, rl);
                len += rl;
            }
        }
        self.run_insert(start, len);
        self.free_count += k as usize;
    }

    /// Returns one node to the free set, coalescing with both neighbours.
    /// O(log n).
    fn insert_free_node(&mut self, node: u32) {
        self.insert_free_span(node, 1);
    }

    /// The `count` lowest free node ids (ascending), without mutation.
    fn peek_lowest(&self, count: usize) -> Vec<NodeId> {
        debug_assert!(count <= self.free_count);
        let mut out = Vec::with_capacity(count);
        for (&start, &len) in &self.free_runs {
            let take = (count - out.len()).min(len as usize) as u32;
            out.extend((start..start + take).map(NodeId));
            if out.len() == count {
                break;
            }
        }
        out
    }

    // ---- public mutation ----------------------------------------------

    /// Allocates `count` nodes using the configured strategy.
    ///
    /// Returns the chosen nodes (ascending) or
    /// [`ClusterError::InsufficientNodes`] without mutating state.
    pub fn allocate(&mut self, count: u32) -> Result<Vec<NodeId>, ClusterError> {
        let count = count as usize;
        if count == 0 {
            return Err(ClusterError::InvalidRequest("zero-node allocation".into()));
        }
        if count > self.free_count {
            return Err(ClusterError::InsufficientNodes {
                requested: count as u32,
                free: self.free_count as u32,
            });
        }
        let mut chosen = match self.strategy {
            AllocStrategy::FirstFit => self.peek_lowest(count),
            AllocStrategy::Contiguous => self.pick_contiguous(count),
            AllocStrategy::TopologyAware => self.pick_topology_aware(count),
        };
        chosen.sort_unstable();
        // Move the chosen set to busy, removing whole consecutive spans
        // from the run structure at once (first-fit and contiguous picks
        // are a handful of spans regardless of allocation size).
        let mut i = 0;
        while i < chosen.len() {
            let mut j = i + 1;
            while j < chosen.len() && chosen[j].0 == chosen[j - 1].0 + 1 {
                j += 1;
            }
            self.remove_free_span(chosen[i].0, (j - i) as u32);
            i = j;
        }
        for &n in &chosen {
            debug_assert!(!self.busy[n.0 as usize], "allocator chose a busy node");
            self.busy[n.0 as usize] = true;
        }
        self.busy_count += chosen.len();
        Ok(chosen)
    }

    /// Returns nodes to the free pool.
    ///
    /// # Panics
    /// Panics (debug) if a node was not busy — releasing twice is a logic
    /// error in the scheduler.
    pub fn release(&mut self, nodes: &[NodeId]) {
        // Pass 1: clear busy flags, keeping the ids actually going back to
        // the free pool (draining nodes stay out).
        let mut freeable: Vec<u32> = Vec::with_capacity(nodes.len());
        let skip_unavailable_check = self.unavailable.is_empty();
        for &n in nodes {
            let flag = self.busy.get_mut(n.0 as usize);
            let was_busy = flag.map(|b| std::mem::replace(b, false)).unwrap_or(false);
            debug_assert!(was_busy, "released node {n} that was not busy");
            if was_busy {
                self.busy_count -= 1;
                if skip_unavailable_check || !self.unavailable.contains(&n) {
                    freeable.push(n.0);
                }
            }
        }
        // Pass 2: coalesce whole consecutive spans at once. Allocations
        // come back in ascending order and are mostly a few runs, so this
        // is O(spans · log n), not O(nodes · log n).
        let mut i = 0;
        while i < freeable.len() {
            let mut j = i + 1;
            while j < freeable.len() && freeable[j] == freeable[j - 1] + 1 {
                j += 1;
            }
            self.insert_free_span(freeable[i], (j - i) as u32);
            i = j;
        }
    }

    /// Marks a free node administratively unavailable (powered off or under
    /// maintenance). Busy nodes cannot be taken; returns `false` for them.
    pub fn mark_unavailable(&mut self, node: NodeId) -> bool {
        if self.is_free(node) {
            self.remove_free_span(node.0, 1);
            self.unavailable.insert(node);
            true
        } else {
            self.unavailable.contains(&node)
        }
    }

    /// Returns an unavailable node to the free pool (boot complete,
    /// maintenance over).
    pub fn mark_available(&mut self, node: NodeId) -> bool {
        if self.unavailable.remove(&node) {
            self.insert_free_node(node.0);
            true
        } else {
            false
        }
    }

    // ---- strategy picks -----------------------------------------------

    fn pick_contiguous(&self, count: usize) -> Vec<NodeId> {
        // Best-fit on runs: the shortest run that fits, lowest start among
        // equal lengths — one range query on the (len, start) mirror. The
        // tie-break matches the old ascending-id scan (first fitting run
        // encountered wins, i.e. lowest start).
        match self.runs_by_len.range((count as u32, 0)..).next() {
            Some(&(_, start)) => (start..start + count as u32).map(NodeId).collect(),
            None => self.peek_lowest(count),
        }
    }

    fn pick_topology_aware(&self, count: usize) -> Vec<NodeId> {
        // Seed: the free node whose locality block has the most free nodes,
        // then grow greedily by minimum total distance to the chosen set.
        let free: Vec<NodeId> = self.free_nodes().collect();
        let unit = self.topology.locality_unit();
        let seed = *free
            .iter()
            .max_by_key(|n| {
                let block = n.0 / unit;
                free.iter().filter(|m| m.0 / unit == block).count()
            })
            .expect("free set nonempty");
        let mut chosen = vec![seed];
        let mut remaining: Vec<NodeId> = free.iter().copied().filter(|&n| n != seed).collect();
        while chosen.len() < count {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &cand)| {
                    chosen
                        .iter()
                        .map(|&c| u64::from(self.topology.distance(cand, c)))
                        .sum::<u64>()
                })
                .expect("remaining nonempty while count unmet");
            chosen.push(remaining.swap_remove(idx));
        }
        chosen
    }

    /// Structural self-check used by the property tests: runs are maximal
    /// and disjoint, counts match, mirrors agree.
    #[cfg(test)]
    fn check_structure(&self) {
        let mut prev_end: Option<u32> = None;
        let mut total_free = 0usize;
        for (&start, &len) in &self.free_runs {
            assert!(len > 0, "empty run at {start}");
            if let Some(pe) = prev_end {
                assert!(start > pe, "runs must be disjoint and non-adjacent");
            }
            assert!(
                self.runs_by_len.contains(&(len, start)),
                "mirror missing ({len},{start})"
            );
            prev_end = Some(start + len);
            total_free += len as usize;
        }
        assert_eq!(self.runs_by_len.len(), self.free_runs.len());
        assert_eq!(total_free, self.free_count);
        assert_eq!(self.busy.iter().filter(|&&b| b).count(), self.busy_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dragonfly() -> Topology {
        Topology::Dragonfly {
            nodes_per_router: 4,
            routers_per_group: 4,
        }
    }

    #[test]
    fn first_fit_takes_lowest_ids() {
        let mut a = Allocator::new(16, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(4).unwrap();
        assert_eq!(got, (0..4).map(NodeId).collect::<Vec<_>>());
        assert_eq!(a.free_count(), 12);
        assert_eq!(a.busy_count(), 4);
    }

    #[test]
    fn insufficient_nodes_is_error_without_mutation() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        a.allocate(3).unwrap();
        let err = a.allocate(2).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InsufficientNodes {
                requested: 2,
                free: 1
            }
        ));
        assert_eq!(a.free_count(), 1);
    }

    #[test]
    fn zero_allocation_rejected() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        assert!(a.allocate(0).is_err());
    }

    #[test]
    fn release_returns_nodes() {
        let mut a = Allocator::new(8, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(8).unwrap();
        a.release(&got);
        assert_eq!(a.free_count(), 8);
        assert_eq!(a.busy_count(), 0);
    }

    #[test]
    fn free_runs_in_clips_and_partitions() {
        let mut a = Allocator::new(16, AllocStrategy::FirstFit, dragonfly());
        // Occupy 0..4 and 6..9, leaving free runs {4,5} and {9..16}.
        let first = a.allocate(4).unwrap();
        let _hole = a.allocate(2).unwrap(); // 4,5
        let second = a.allocate(3).unwrap(); // 6,7,8
        a.release(&_hole);
        assert_eq!(a.free_runs_in(0, 16), vec![(4, 2), (9, 7)]);
        // A window cutting through the second run clips it on both sides.
        assert_eq!(a.free_runs_in(10, 12), vec![(10, 2)]);
        // Shard-partitioned counts sum to the global free count.
        let total: usize = [(0u32, 8u32), (8, 16)]
            .iter()
            .map(|&(lo, hi)| a.free_count_in(lo, hi))
            .sum();
        assert_eq!(total, a.free_count());
        assert_eq!(a.free_count_in(0, 0), 0);
        drop((first, second));
    }

    #[test]
    fn release_coalesces_runs() {
        let mut a = Allocator::new(8, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(8).unwrap();
        // Release out of order; the free set must coalesce back into the
        // single maximal run 0..8 (observable via a full-width contiguous
        // allocation succeeding).
        a.release(&[got[3]]);
        a.release(&[got[5]]);
        a.release(&[got[4]]);
        a.release(&[got[0], got[1], got[2], got[6], got[7]]);
        assert_eq!(a.free_count(), 8);
        let again = a.allocate(8).unwrap();
        assert_eq!(again, (0..8).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn contiguous_prefers_tight_runs() {
        let mut a = Allocator::new(16, AllocStrategy::Contiguous, dragonfly());
        // Occupy 0..6 and 8..10, leaving free: {6,7} and {10..16}.
        let first = a.allocate(6).unwrap();
        assert_eq!(first, (0..6).map(NodeId).collect::<Vec<_>>());
        // Free run {6,7} has length 2; run {8..16} length 8 — after taking
        // 6 more the allocator state is what we set up next.
        a.allocate(2).unwrap(); // takes 6,7 (shortest fitting run of len 2)
        let third = a.allocate(2).unwrap();
        assert_eq!(third, vec![NodeId(8), NodeId(9)]);
    }

    #[test]
    fn contiguous_best_fit_picks_smallest_fitting_run() {
        let mut a = Allocator::new(20, AllocStrategy::Contiguous, dragonfly());
        let all = a.allocate(20).unwrap();
        a.release(&[NodeId(2), NodeId(3), NodeId(4)]); // run of 3
        a.release(&[NodeId(10), NodeId(11)]); // run of 2
        let got = a.allocate(2).unwrap();
        assert_eq!(
            got,
            vec![NodeId(10), NodeId(11)],
            "best-fit should pick the run of 2"
        );
        let _ = all;
    }

    #[test]
    fn contiguous_ties_break_to_lowest_start() {
        let mut a = Allocator::new(20, AllocStrategy::Contiguous, dragonfly());
        let all = a.allocate(20).unwrap();
        a.release(&[NodeId(12), NodeId(13)]); // run of 2 (higher start)
        a.release(&[NodeId(5), NodeId(6)]); // run of 2 (lower start)
        let got = a.allocate(2).unwrap();
        assert_eq!(got, vec![NodeId(5), NodeId(6)]);
        let _ = all;
    }

    #[test]
    fn topology_aware_is_compact() {
        let topo = dragonfly();
        let mut ta = Allocator::new(64, AllocStrategy::TopologyAware, topo.clone());
        let mut ff = Allocator::new(64, AllocStrategy::FirstFit, topo.clone());
        // Fragment both allocators the same way: occupy every other router.
        for alloc in [&mut ta, &mut ff] {
            for r in (0..16).step_by(2) {
                for i in 0..2 {
                    // half of each even router
                    let node = NodeId(r * 4 + i);
                    assert!(alloc.mark_unavailable(node));
                }
            }
        }
        let a = ta.allocate(8).unwrap();
        let b = ff.allocate(8).unwrap();
        assert!(
            topo.avg_pairwise_distance(&a) <= topo.avg_pairwise_distance(&b),
            "topology-aware ({:?}) should not be more spread than first-fit ({:?})",
            a,
            b
        );
    }

    #[test]
    fn unavailable_nodes_are_not_allocated() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        assert!(a.mark_unavailable(NodeId(0)));
        let got = a.allocate(3).unwrap();
        assert!(!got.contains(&NodeId(0)));
        assert!(a.allocate(1).is_err());
        assert!(a.mark_available(NodeId(0)));
        assert_eq!(a.allocate(1).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn busy_node_cannot_be_marked_unavailable() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(1).unwrap();
        assert!(!a.mark_unavailable(got[0]));
    }

    #[test]
    fn release_respects_unavailability() {
        // A node marked unavailable while busy stays out of the free pool
        // on release (it is draining toward maintenance).
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(1).unwrap();
        a.unavailable.insert(got[0]); // direct: simulate drain mark
        a.release(&got);
        assert!(!a.is_free(got[0]));
        assert_eq!(a.unavailable_count(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Alloc(u32),
        Release(usize),
        MarkUnavailable(u32),
        MarkAvailable(u32),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (1u32..20).prop_map(Op::Alloc),
                (0usize..8).prop_map(Op::Release),
                (0u32..48).prop_map(Op::MarkUnavailable),
                (0u32..48).prop_map(Op::MarkAvailable),
            ],
            1..60,
        )
    }

    fn arb_strategy() -> impl Strategy<Value = AllocStrategy> {
        prop_oneof![
            Just(AllocStrategy::FirstFit),
            Just(AllocStrategy::Contiguous),
            Just(AllocStrategy::TopologyAware),
        ]
    }

    /// The original `BTreeSet`-per-node allocator, kept verbatim as the
    /// behavioural model the interval implementation must match.
    struct ModelAllocator {
        free: BTreeSet<NodeId>,
        busy: BTreeSet<NodeId>,
        unavailable: BTreeSet<NodeId>,
        strategy: AllocStrategy,
        topology: Topology,
    }

    impl ModelAllocator {
        fn new(total: u32, strategy: AllocStrategy, topology: Topology) -> Self {
            ModelAllocator {
                free: (0..total).map(NodeId).collect(),
                busy: BTreeSet::new(),
                unavailable: BTreeSet::new(),
                strategy,
                topology,
            }
        }

        fn allocate(&mut self, count: u32) -> Option<Vec<NodeId>> {
            let count = count as usize;
            if count == 0 || count > self.free.len() {
                return None;
            }
            let mut chosen = match self.strategy {
                AllocStrategy::FirstFit => {
                    self.free.iter().copied().take(count).collect::<Vec<_>>()
                }
                AllocStrategy::Contiguous => self.pick_contiguous(count),
                AllocStrategy::TopologyAware => self.pick_topology_aware(count),
            };
            chosen.sort_unstable();
            for &n in &chosen {
                self.free.remove(&n);
                self.busy.insert(n);
            }
            Some(chosen)
        }

        fn release(&mut self, nodes: &[NodeId]) {
            for &n in nodes {
                let was_busy = self.busy.remove(&n);
                if was_busy && !self.unavailable.contains(&n) {
                    self.free.insert(n);
                }
            }
        }

        fn mark_unavailable(&mut self, node: NodeId) -> bool {
            if self.free.remove(&node) {
                self.unavailable.insert(node);
                true
            } else {
                self.unavailable.contains(&node)
            }
        }

        fn mark_available(&mut self, node: NodeId) -> bool {
            if self.unavailable.remove(&node) {
                self.free.insert(node);
                true
            } else {
                false
            }
        }

        fn pick_contiguous(&self, count: usize) -> Vec<NodeId> {
            let free: Vec<NodeId> = self.free.iter().copied().collect();
            let mut best: Option<(usize, usize)> = None;
            let mut run_start = 0;
            for i in 1..=free.len() {
                let broken = i == free.len() || free[i].0 != free[i - 1].0 + 1;
                if broken {
                    let run_len = i - run_start;
                    if run_len >= count {
                        let better = match best {
                            None => true,
                            Some((_, blen)) => run_len < blen,
                        };
                        if better {
                            best = Some((run_start, run_len));
                        }
                    }
                    run_start = i;
                }
            }
            match best {
                Some((start, _)) => free[start..start + count].to_vec(),
                None => free.into_iter().take(count).collect(),
            }
        }

        fn pick_topology_aware(&self, count: usize) -> Vec<NodeId> {
            let free: Vec<NodeId> = self.free.iter().copied().collect();
            let unit = self.topology.locality_unit();
            let seed = *free
                .iter()
                .max_by_key(|n| {
                    let block = n.0 / unit;
                    free.iter().filter(|m| m.0 / unit == block).count()
                })
                .expect("free set nonempty");
            let mut chosen = vec![seed];
            let mut remaining: Vec<NodeId> = free.iter().copied().filter(|&n| n != seed).collect();
            while chosen.len() < count {
                let (idx, _) = remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &cand)| {
                        chosen
                            .iter()
                            .map(|&c| u64::from(self.topology.distance(cand, c)))
                            .sum::<u64>()
                    })
                    .expect("remaining nonempty while count unmet");
                chosen.push(remaining.swap_remove(idx));
            }
            chosen
        }
    }

    proptest! {
        /// Under any operation sequence: no double-booking, conservation of
        /// nodes, and allocations return exactly the requested count.
        #[test]
        fn no_double_booking(ops in arb_ops(), strategy in arb_strategy()) {
            let topo = Topology::Dragonfly { nodes_per_router: 4, routers_per_group: 4 };
            let mut a = Allocator::new(48, strategy, topo);
            let mut live: Vec<Vec<NodeId>> = Vec::new();
            for op in ops {
                match op {
                    Op::Alloc(n) => {
                        if let Ok(got) = a.allocate(n) {
                            prop_assert_eq!(got.len(), n as usize);
                            // No overlap with any live allocation.
                            for other in &live {
                                for node in &got {
                                    prop_assert!(!other.contains(node), "double booked {:?}", node);
                                }
                            }
                            live.push(got);
                        }
                    }
                    Op::Release(i) => {
                        if !live.is_empty() {
                            let idx = i % live.len();
                            let nodes = live.swap_remove(idx);
                            a.release(&nodes);
                        }
                    }
                    Op::MarkUnavailable(n) => { a.mark_unavailable(NodeId(n)); }
                    Op::MarkAvailable(n) => { a.mark_available(NodeId(n)); }
                }
                let live_total: usize = live.iter().map(Vec::len).sum();
                prop_assert_eq!(a.busy_count(), live_total);
                prop_assert_eq!(a.free_count() + a.busy_count() + a.unavailable_count(), 48);
            }
        }

        /// The interval-run allocator is observationally identical to the
        /// old per-node `BTreeSet` implementation under random
        /// allocate/release/mark_unavailable/mark_available sequences, for
        /// every strategy: same picks, same results, same free/busy/
        /// unavailable partitions after every step.
        #[test]
        fn interval_matches_btreeset_model(ops in arb_ops(), strategy in arb_strategy()) {
            let topo = Topology::Dragonfly { nodes_per_router: 4, routers_per_group: 4 };
            let mut real = Allocator::new(48, strategy, topo.clone());
            let mut model = ModelAllocator::new(48, strategy, topo);
            let mut live: Vec<Vec<NodeId>> = Vec::new();
            for op in ops {
                match op {
                    Op::Alloc(n) => {
                        let got_real = real.allocate(n).ok();
                        let got_model = model.allocate(n);
                        prop_assert_eq!(&got_real, &got_model,
                            "allocate({}) diverged", n);
                        if let Some(nodes) = got_real {
                            live.push(nodes);
                        }
                    }
                    Op::Release(i) => {
                        if !live.is_empty() {
                            let idx = i % live.len();
                            let nodes = live.swap_remove(idx);
                            real.release(&nodes);
                            model.release(&nodes);
                        }
                    }
                    Op::MarkUnavailable(n) => {
                        prop_assert_eq!(
                            real.mark_unavailable(NodeId(n)),
                            model.mark_unavailable(NodeId(n))
                        );
                    }
                    Op::MarkAvailable(n) => {
                        prop_assert_eq!(
                            real.mark_available(NodeId(n)),
                            model.mark_available(NodeId(n))
                        );
                    }
                }
                real.check_structure();
                let real_free: Vec<NodeId> = real.free_nodes().collect();
                let model_free: Vec<NodeId> = model.free.iter().copied().collect();
                prop_assert_eq!(real_free, model_free, "free sets diverged");
                let real_busy: Vec<NodeId> = real.busy_nodes().collect();
                let model_busy: Vec<NodeId> = model.busy.iter().copied().collect();
                prop_assert_eq!(real_busy, model_busy, "busy sets diverged");
                prop_assert_eq!(real.unavailable.clone(), model.unavailable.clone());
            }
        }
    }
}
