//! Node allocation strategies.
//!
//! The allocator owns the free/busy partition of a system's nodes and
//! hands out node sets to the scheduler. Besides the first-fit baseline it
//! implements the contiguous and topology-aware placements that survey
//! question Q6 asks about: topology-aware allocation reduces the average
//! pairwise hop distance of a job's nodes, which shortens communication
//! phases and thereby *indirectly* reduces energy-to-solution — the exact
//! mechanism Q6's rationale describes.
//!
//! Invariant (property-tested): a node is never allocated to two jobs at
//! once, and release returns exactly the allocated set.

use crate::error::ClusterError;
use crate::node::NodeId;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Placement strategy for picking nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocStrategy {
    /// Lowest-numbered free nodes (the classic default).
    #[default]
    FirstFit,
    /// The contiguous run of free nodes with the smallest span that fits;
    /// falls back to first-fit when no contiguous run exists.
    Contiguous,
    /// Greedy topology-aware packing: grow the allocation around a seed
    /// node, always taking the free node closest (in hop distance) to the
    /// already-chosen set.
    TopologyAware,
}

/// Tracks which nodes are free, allocated, or administratively unavailable.
#[derive(Debug, Clone)]
pub struct Allocator {
    total: u32,
    free: BTreeSet<NodeId>,
    busy: BTreeSet<NodeId>,
    unavailable: BTreeSet<NodeId>,
    strategy: AllocStrategy,
    topology: Topology,
}

impl Allocator {
    /// Creates an allocator over nodes `0..total`, all free.
    #[must_use]
    pub fn new(total: u32, strategy: AllocStrategy, topology: Topology) -> Self {
        Allocator {
            total,
            free: (0..total).map(NodeId).collect(),
            busy: BTreeSet::new(),
            unavailable: BTreeSet::new(),
            strategy,
            topology,
        }
    }

    /// Total number of nodes managed.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Number of currently free (allocatable) nodes.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of nodes currently allocated to jobs.
    #[must_use]
    pub fn busy_count(&self) -> usize {
        self.busy.len()
    }

    /// Number of administratively unavailable nodes (off, maintenance).
    #[must_use]
    pub fn unavailable_count(&self) -> usize {
        self.unavailable.len()
    }

    /// The placement strategy in use.
    #[must_use]
    pub fn strategy(&self) -> AllocStrategy {
        self.strategy
    }

    /// True if `node` is currently free.
    #[must_use]
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free.contains(&node)
    }

    /// True if `node` is currently allocated.
    #[must_use]
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.busy.contains(&node)
    }

    /// Iterates over the free set in ascending order.
    pub fn free_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.free.iter().copied()
    }

    /// Iterates over the busy set in ascending order.
    pub fn busy_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.busy.iter().copied()
    }

    /// Allocates `count` nodes using the configured strategy.
    ///
    /// Returns the chosen nodes (ascending) or
    /// [`ClusterError::InsufficientNodes`] without mutating state.
    pub fn allocate(&mut self, count: u32) -> Result<Vec<NodeId>, ClusterError> {
        let count = count as usize;
        if count == 0 {
            return Err(ClusterError::InvalidRequest("zero-node allocation".into()));
        }
        if count > self.free.len() {
            return Err(ClusterError::InsufficientNodes {
                requested: count as u32,
                free: self.free.len() as u32,
            });
        }
        let mut chosen = match self.strategy {
            AllocStrategy::FirstFit => self.free.iter().copied().take(count).collect::<Vec<_>>(),
            AllocStrategy::Contiguous => self.pick_contiguous(count),
            AllocStrategy::TopologyAware => self.pick_topology_aware(count),
        };
        chosen.sort_unstable();
        for &n in &chosen {
            let was_free = self.free.remove(&n);
            debug_assert!(was_free, "allocator chose a non-free node");
            self.busy.insert(n);
        }
        Ok(chosen)
    }

    /// Returns nodes to the free pool.
    ///
    /// # Panics
    /// Panics (debug) if a node was not busy — releasing twice is a logic
    /// error in the scheduler.
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            let was_busy = self.busy.remove(&n);
            debug_assert!(was_busy, "released node {n} that was not busy");
            if was_busy && !self.unavailable.contains(&n) {
                self.free.insert(n);
            }
        }
    }

    /// Marks a free node administratively unavailable (powered off or under
    /// maintenance). Busy nodes cannot be taken; returns `false` for them.
    pub fn mark_unavailable(&mut self, node: NodeId) -> bool {
        if self.free.remove(&node) {
            self.unavailable.insert(node);
            true
        } else {
            self.unavailable.contains(&node)
        }
    }

    /// Returns an unavailable node to the free pool (boot complete,
    /// maintenance over).
    pub fn mark_available(&mut self, node: NodeId) -> bool {
        if self.unavailable.remove(&node) {
            self.free.insert(node);
            true
        } else {
            false
        }
    }

    fn pick_contiguous(&self, count: usize) -> Vec<NodeId> {
        // Scan runs of consecutive ids in the free set; pick the shortest
        // run that fits (best-fit on runs), else first-fit.
        let free: Vec<NodeId> = self.free.iter().copied().collect();
        let mut best: Option<(usize, usize)> = None; // (start index, run length)
        let mut run_start = 0;
        for i in 1..=free.len() {
            let broken = i == free.len() || free[i].0 != free[i - 1].0 + 1;
            if broken {
                let run_len = i - run_start;
                if run_len >= count {
                    let better = match best {
                        None => true,
                        Some((_, blen)) => run_len < blen,
                    };
                    if better {
                        best = Some((run_start, run_len));
                    }
                }
                run_start = i;
            }
        }
        match best {
            Some((start, _)) => free[start..start + count].to_vec(),
            None => free.into_iter().take(count).collect(),
        }
    }

    fn pick_topology_aware(&self, count: usize) -> Vec<NodeId> {
        // Seed: the free node whose locality block has the most free nodes,
        // then grow greedily by minimum total distance to the chosen set.
        let free: Vec<NodeId> = self.free.iter().copied().collect();
        let unit = self.topology.locality_unit();
        let seed = *free
            .iter()
            .max_by_key(|n| {
                let block = n.0 / unit;
                free.iter().filter(|m| m.0 / unit == block).count()
            })
            .expect("free set nonempty");
        let mut chosen = vec![seed];
        let mut remaining: Vec<NodeId> = free.iter().copied().filter(|&n| n != seed).collect();
        while chosen.len() < count {
            let (idx, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, &cand)| {
                    chosen
                        .iter()
                        .map(|&c| u64::from(self.topology.distance(cand, c)))
                        .sum::<u64>()
                })
                .expect("remaining nonempty while count unmet");
            chosen.push(remaining.swap_remove(idx));
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dragonfly() -> Topology {
        Topology::Dragonfly {
            nodes_per_router: 4,
            routers_per_group: 4,
        }
    }

    #[test]
    fn first_fit_takes_lowest_ids() {
        let mut a = Allocator::new(16, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(4).unwrap();
        assert_eq!(got, (0..4).map(NodeId).collect::<Vec<_>>());
        assert_eq!(a.free_count(), 12);
        assert_eq!(a.busy_count(), 4);
    }

    #[test]
    fn insufficient_nodes_is_error_without_mutation() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        a.allocate(3).unwrap();
        let err = a.allocate(2).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InsufficientNodes {
                requested: 2,
                free: 1
            }
        ));
        assert_eq!(a.free_count(), 1);
    }

    #[test]
    fn zero_allocation_rejected() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        assert!(a.allocate(0).is_err());
    }

    #[test]
    fn release_returns_nodes() {
        let mut a = Allocator::new(8, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(8).unwrap();
        a.release(&got);
        assert_eq!(a.free_count(), 8);
        assert_eq!(a.busy_count(), 0);
    }

    #[test]
    fn contiguous_prefers_tight_runs() {
        let mut a = Allocator::new(16, AllocStrategy::Contiguous, dragonfly());
        // Occupy 0..6 and 8..10, leaving free: {6,7} and {10..16}.
        let first = a.allocate(6).unwrap();
        assert_eq!(first, (0..6).map(NodeId).collect::<Vec<_>>());
        // Free run {6,7} has length 2; run {8..16} length 8 — after taking
        // 6 more the allocator state is what we set up next.
        a.allocate(2).unwrap(); // takes 6,7 (shortest fitting run of len 2)
        let third = a.allocate(2).unwrap();
        assert_eq!(third, vec![NodeId(8), NodeId(9)]);
    }

    #[test]
    fn contiguous_best_fit_picks_smallest_fitting_run() {
        let mut a = Allocator::new(20, AllocStrategy::Contiguous, dragonfly());
        let all = a.allocate(20).unwrap();
        a.release(&[NodeId(2), NodeId(3), NodeId(4)]); // run of 3
        a.release(&[NodeId(10), NodeId(11)]); // run of 2
        let got = a.allocate(2).unwrap();
        assert_eq!(
            got,
            vec![NodeId(10), NodeId(11)],
            "best-fit should pick the run of 2"
        );
        let _ = all;
    }

    #[test]
    fn topology_aware_is_compact() {
        let topo = dragonfly();
        let mut ta = Allocator::new(64, AllocStrategy::TopologyAware, topo.clone());
        let mut ff = Allocator::new(64, AllocStrategy::FirstFit, topo.clone());
        // Fragment both allocators the same way: occupy every other router.
        for alloc in [&mut ta, &mut ff] {
            for r in (0..16).step_by(2) {
                for i in 0..2 {
                    // half of each even router
                    let node = NodeId(r * 4 + i);
                    assert!(alloc.mark_unavailable(node));
                }
            }
        }
        let a = ta.allocate(8).unwrap();
        let b = ff.allocate(8).unwrap();
        assert!(
            topo.avg_pairwise_distance(&a) <= topo.avg_pairwise_distance(&b),
            "topology-aware ({:?}) should not be more spread than first-fit ({:?})",
            a,
            b
        );
    }

    #[test]
    fn unavailable_nodes_are_not_allocated() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        assert!(a.mark_unavailable(NodeId(0)));
        let got = a.allocate(3).unwrap();
        assert!(!got.contains(&NodeId(0)));
        assert!(a.allocate(1).is_err());
        assert!(a.mark_available(NodeId(0)));
        assert_eq!(a.allocate(1).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn busy_node_cannot_be_marked_unavailable() {
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(1).unwrap();
        assert!(!a.mark_unavailable(got[0]));
    }

    #[test]
    fn release_respects_unavailability() {
        // A node marked unavailable while busy stays out of the free pool
        // on release (it is draining toward maintenance).
        let mut a = Allocator::new(4, AllocStrategy::FirstFit, dragonfly());
        let got = a.allocate(1).unwrap();
        a.unavailable.insert(got[0]); // direct: simulate drain mark
        a.release(&got);
        assert!(!a.is_free(got[0]));
        assert_eq!(a.unavailable_count(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Alloc(u32),
        Release(usize),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (1u32..20).prop_map(Op::Alloc),
                (0usize..8).prop_map(Op::Release),
            ],
            1..60,
        )
    }

    fn arb_strategy() -> impl Strategy<Value = AllocStrategy> {
        prop_oneof![
            Just(AllocStrategy::FirstFit),
            Just(AllocStrategy::Contiguous),
            Just(AllocStrategy::TopologyAware),
        ]
    }

    proptest! {
        /// Under any operation sequence: no double-booking, conservation of
        /// nodes, and allocations return exactly the requested count.
        #[test]
        fn no_double_booking(ops in arb_ops(), strategy in arb_strategy()) {
            let topo = Topology::Dragonfly { nodes_per_router: 4, routers_per_group: 4 };
            let mut a = Allocator::new(48, strategy, topo);
            let mut live: Vec<Vec<NodeId>> = Vec::new();
            for op in ops {
                match op {
                    Op::Alloc(n) => {
                        if let Ok(got) = a.allocate(n) {
                            prop_assert_eq!(got.len(), n as usize);
                            // No overlap with any live allocation.
                            for other in &live {
                                for node in &got {
                                    prop_assert!(!other.contains(node), "double booked {:?}", node);
                                }
                            }
                            live.push(got);
                        }
                    }
                    Op::Release(i) => {
                        if !live.is_empty() {
                            let idx = i % live.len();
                            let nodes = live.swap_remove(idx);
                            a.release(&nodes);
                        }
                    }
                }
                let live_total: usize = live.iter().map(Vec::len).sum();
                prop_assert_eq!(a.busy_count(), live_total);
                prop_assert_eq!(a.free_count() + a.busy_count() + a.unavailable_count(), 48);
            }
        }
    }
}
