//! Interconnect topologies and hop-distance metrics.
//!
//! Topology-aware task allocation (survey question Q6) needs a notion of
//! "how far apart" two nodes are. We model the three interconnect families
//! the surveyed systems use:
//!
//! - **Fat-tree** (CEA, KAUST Cray Aries is dragonfly but BG/P-era systems
//!   and many clusters are fat-trees): distance = 2 × levels to the lowest
//!   common ancestor switch.
//! - **3-D torus** (K computer's Tofu is a 6-D torus; we model the classic
//!   3-D case): Manhattan distance with wraparound per dimension.
//! - **Dragonfly** (Cray XC at KAUST/Trinity/CINECA): 1 hop within a
//!   router, 2 within a group, 5 across groups (the standard minimal-route
//!   hop counts).

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// An interconnect topology over a fixed number of nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// A k-ary fat-tree: `arity` nodes per leaf switch, `arity` child
    /// switches per parent, for as many levels as the node count needs.
    FatTree {
        /// Ports toward children per switch.
        arity: u32,
    },
    /// A 3-D torus with the given dimensions (x, y, z); nodes are mapped
    /// in row-major order. Node count must not exceed x·y·z.
    Torus3D {
        /// Dimension sizes.
        dims: (u32, u32, u32),
    },
    /// A dragonfly: `routers_per_group` routers of `nodes_per_router`
    /// nodes, any number of groups.
    Dragonfly {
        /// Nodes attached to one router.
        nodes_per_router: u32,
        /// Routers in one group.
        routers_per_group: u32,
    },
}

impl Topology {
    /// Hop distance between two nodes under minimal routing.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return 0;
        }
        match *self {
            Topology::FatTree { arity } => {
                let arity = arity.max(2);
                // Hops = 2 * (levels up to the lowest common ancestor).
                let mut ga = a.0 / arity;
                let mut gb = b.0 / arity;
                let mut up = 1;
                while ga != gb {
                    ga /= arity;
                    gb /= arity;
                    up += 1;
                }
                2 * up
            }
            Topology::Torus3D { dims } => {
                let (xa, ya, za) = torus_coords(a, dims);
                let (xb, yb, zb) = torus_coords(b, dims);
                wrap_dist(xa, xb, dims.0) + wrap_dist(ya, yb, dims.1) + wrap_dist(za, zb, dims.2)
            }
            Topology::Dragonfly {
                nodes_per_router,
                routers_per_group,
            } => {
                let npr = nodes_per_router.max(1);
                let rpg = routers_per_group.max(1);
                let ra = a.0 / npr;
                let rb = b.0 / npr;
                if ra == rb {
                    1 // same router
                } else if ra / rpg == rb / rpg {
                    2 // same group, router-to-router hop
                } else {
                    5 // minimal global route: local + global + local (+ injection)
                }
            }
        }
    }

    /// Average pairwise hop distance of a node set — the communication-cost
    /// proxy that topology-aware allocation minimizes.
    #[must_use]
    pub fn avg_pairwise_distance(&self, nodes: &[NodeId]) -> f64 {
        if nodes.len() < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                total += u64::from(self.distance(a, b));
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }

    /// The size of the smallest locality domain (nodes sharing a leaf
    /// switch / router / torus line). Used by allocators to align blocks.
    #[must_use]
    pub fn locality_unit(&self) -> u32 {
        match *self {
            Topology::FatTree { arity } => arity.max(2),
            Topology::Torus3D { dims } => dims.0.max(1),
            Topology::Dragonfly {
                nodes_per_router, ..
            } => nodes_per_router.max(1),
        }
    }
}

fn torus_coords(n: NodeId, dims: (u32, u32, u32)) -> (u32, u32, u32) {
    let (x, y, z) = (dims.0.max(1), dims.1.max(1), dims.2.max(1));
    // Ids beyond the torus capacity wrap around; keeps the metric total.
    let idx = n.0 % (x * y * z);
    (idx % x, (idx / x) % y, idx / (x * y))
}

fn wrap_dist(a: u32, b: u32, dim: u32) -> u32 {
    if dim == 0 {
        return 0;
    }
    let d = a.abs_diff(b);
    d.min(dim - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn distance_is_zero_for_self() {
        for topo in [
            Topology::FatTree { arity: 4 },
            Topology::Torus3D { dims: (4, 4, 4) },
            Topology::Dragonfly {
                nodes_per_router: 4,
                routers_per_group: 8,
            },
        ] {
            assert_eq!(topo.distance(n(5), n(5)), 0);
        }
    }

    #[test]
    fn fat_tree_levels() {
        let topo = Topology::FatTree { arity: 4 };
        // Same leaf switch (nodes 0..4): one level up.
        assert_eq!(topo.distance(n(0), n(3)), 2);
        // Adjacent leaf switches share a level-2 switch.
        assert_eq!(topo.distance(n(0), n(4)), 4);
        // Far apart: three levels.
        assert_eq!(topo.distance(n(0), n(16)), 6);
    }

    #[test]
    fn torus_wraparound() {
        let topo = Topology::Torus3D { dims: (4, 4, 4) };
        // Nodes 0 and 3 are x=0 and x=3: wrap distance is 1, not 3.
        assert_eq!(topo.distance(n(0), n(3)), 1);
        assert_eq!(topo.distance(n(0), n(1)), 1);
        assert_eq!(topo.distance(n(0), n(2)), 2);
        // One step in y: index 4 => (0,1,0).
        assert_eq!(topo.distance(n(0), n(4)), 1);
        // One step in z: index 16 => (0,0,1).
        assert_eq!(topo.distance(n(0), n(16)), 1);
        // Diagonal corner (3,3,3) = index 63: wraps to 1+1+1.
        assert_eq!(topo.distance(n(0), n(63)), 3);
    }

    #[test]
    fn dragonfly_hop_classes() {
        let topo = Topology::Dragonfly {
            nodes_per_router: 4,
            routers_per_group: 8,
        };
        assert_eq!(topo.distance(n(0), n(3)), 1); // same router
        assert_eq!(topo.distance(n(0), n(4)), 2); // same group
        assert_eq!(topo.distance(n(0), n(32)), 5); // cross group
    }

    #[test]
    fn avg_pairwise_distance_compact_beats_spread() {
        let topo = Topology::Dragonfly {
            nodes_per_router: 4,
            routers_per_group: 8,
        };
        let compact: Vec<NodeId> = (0..4).map(n).collect();
        let spread: Vec<NodeId> = [0u32, 32, 64, 96].iter().map(|&i| n(i)).collect();
        assert!(topo.avg_pairwise_distance(&compact) < topo.avg_pairwise_distance(&spread));
    }

    #[test]
    fn avg_pairwise_distance_trivial_sets() {
        let topo = Topology::FatTree { arity: 4 };
        assert_eq!(topo.avg_pairwise_distance(&[]), 0.0);
        assert_eq!(topo.avg_pairwise_distance(&[n(0)]), 0.0);
    }

    #[test]
    fn locality_units() {
        assert_eq!(Topology::FatTree { arity: 8 }.locality_unit(), 8);
        assert_eq!(Topology::Torus3D { dims: (6, 5, 4) }.locality_unit(), 6);
        assert_eq!(
            Topology::Dragonfly {
                nodes_per_router: 4,
                routers_per_group: 8
            }
            .locality_unit(),
            4
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_topology() -> impl Strategy<Value = Topology> {
        prop_oneof![
            (2u32..16).prop_map(|arity| Topology::FatTree { arity }),
            ((2u32..8), (2u32..8), (2u32..8)).prop_map(|dims| Topology::Torus3D { dims }),
            ((1u32..8), (2u32..16)).prop_map(|(npr, rpg)| Topology::Dragonfly {
                nodes_per_router: npr,
                routers_per_group: rpg
            }),
        ]
    }

    proptest! {
        /// Hop distance is a symmetric, self-zero metric.
        #[test]
        fn distance_symmetric(topo in arb_topology(), a in 0u32..512, b in 0u32..512) {
            // Keep ids within the torus capacity so distinct ids are
            // distinct coordinates (ids wrap beyond capacity by design).
            let (a, b) = if let Topology::Torus3D { dims } = topo {
                let cap = dims.0 * dims.1 * dims.2;
                (a % cap, b % cap)
            } else {
                (a, b)
            };
            prop_assert_eq!(topo.distance(NodeId(a), NodeId(b)), topo.distance(NodeId(b), NodeId(a)));
            prop_assert_eq!(topo.distance(NodeId(a), NodeId(a)), 0);
            if a != b {
                prop_assert!(topo.distance(NodeId(a), NodeId(b)) > 0);
            }
        }

        /// Torus distance obeys the triangle inequality.
        #[test]
        fn torus_triangle(dims in ((2u32..8), (2u32..8), (2u32..8)), a in 0u32..512, b in 0u32..512, c in 0u32..512) {
            let topo = Topology::Torus3D { dims };
            let cap = dims.0 * dims.1 * dims.2;
            let (a, b, c) = (a % cap, b % cap, c % cap);
            let ab = topo.distance(NodeId(a), NodeId(b));
            let bc = topo.distance(NodeId(b), NodeId(c));
            let ac = topo.distance(NodeId(a), NodeId(c));
            prop_assert!(ac <= ab + bc);
        }
    }
}
