//! Node and CPU hardware descriptions.
//!
//! A [`NodeSpec`] is the static description of one compute node: its CPU
//! (core count, frequency range for DVFS), memory, and power envelope
//! (idle / nominal / peak watts). The power envelope is the Q2(c) data the
//! survey collects per system; the frequency ladder is what DVFS-based
//! policies (LRZ, CEA) actuate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within one [`crate::System`] (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// CPU description: cores and the DVFS frequency ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical cores per node.
    pub cores: u32,
    /// Lowest DVFS frequency in GHz.
    pub min_freq_ghz: f64,
    /// Base (nominal) frequency in GHz.
    pub base_freq_ghz: f64,
    /// Highest (turbo) frequency in GHz.
    pub max_freq_ghz: f64,
    /// Number of discrete DVFS steps between min and max, inclusive.
    pub freq_steps: u32,
}

impl CpuSpec {
    /// A representative 2017-era HPC CPU (two-socket node aggregate).
    #[must_use]
    pub fn typical_xeon() -> Self {
        CpuSpec {
            cores: 32,
            min_freq_ghz: 1.2,
            base_freq_ghz: 2.3,
            max_freq_ghz: 2.9,
            freq_steps: 16,
        }
    }

    /// A representative many-core (Xeon Phi / KNL-style) node, as deployed
    /// at JCAHPC (Oakforest-PACS) and on Trinity's KNL partition.
    #[must_use]
    pub fn typical_knl() -> Self {
        CpuSpec {
            cores: 68,
            min_freq_ghz: 1.0,
            base_freq_ghz: 1.4,
            max_freq_ghz: 1.6,
            freq_steps: 7,
        }
    }

    /// The discrete DVFS ladder, ascending, min..=max.
    #[must_use]
    pub fn frequency_ladder(&self) -> Vec<f64> {
        let n = self.freq_steps.max(2);
        (0..n)
            .map(|i| {
                self.min_freq_ghz
                    + (self.max_freq_ghz - self.min_freq_ghz) * f64::from(i) / f64::from(n - 1)
            })
            .collect()
    }

    /// Clamps a requested frequency onto the nearest ladder step.
    #[must_use]
    pub fn quantize_frequency(&self, ghz: f64) -> f64 {
        let ladder = self.frequency_ladder();
        *ladder
            .iter()
            .min_by(|a, b| {
                (*a - ghz)
                    .abs()
                    .partial_cmp(&(*b - ghz).abs())
                    .expect("finite")
            })
            .expect("ladder nonempty")
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be positive".into());
        }
        if !(self.min_freq_ghz > 0.0
            && self.min_freq_ghz <= self.base_freq_ghz
            && self.base_freq_ghz <= self.max_freq_ghz)
        {
            return Err(format!(
                "frequency ladder must satisfy 0 < min <= base <= max, got {}/{}/{}",
                self.min_freq_ghz, self.base_freq_ghz, self.max_freq_ghz
            ));
        }
        Ok(())
    }
}

/// Static description of one compute node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU configuration.
    pub cpu: CpuSpec,
    /// Memory per node in GiB.
    pub memory_gib: u32,
    /// Power draw with the node on but idle, in watts.
    pub idle_watts: f64,
    /// Power draw at nominal load and base frequency, in watts.
    pub nominal_watts: f64,
    /// Peak power draw (turbo, power-virus workload), in watts.
    pub peak_watts: f64,
    /// Power drawn while the node is powered off (BMC only), in watts.
    pub off_watts: f64,
}

impl NodeSpec {
    /// A representative Xeon node with a ~90–400 W envelope.
    #[must_use]
    pub fn typical_xeon() -> Self {
        NodeSpec {
            cpu: CpuSpec::typical_xeon(),
            memory_gib: 128,
            idle_watts: 90.0,
            nominal_watts: 290.0,
            peak_watts: 400.0,
            off_watts: 8.0,
        }
    }

    /// A representative KNL node (Trinity/Oakforest class).
    #[must_use]
    pub fn typical_knl() -> Self {
        NodeSpec {
            cpu: CpuSpec::typical_knl(),
            memory_gib: 96,
            idle_watts: 70.0,
            nominal_watts: 215.0,
            peak_watts: 270.0,
            off_watts: 6.0,
        }
    }

    /// Validates the power envelope ordering off < idle <= nominal <= peak.
    pub fn validate(&self) -> Result<(), String> {
        self.cpu.validate()?;
        if self.memory_gib == 0 {
            return Err("memory must be positive".into());
        }
        if !(self.off_watts >= 0.0
            && self.off_watts < self.idle_watts
            && self.idle_watts <= self.nominal_watts
            && self.nominal_watts <= self.peak_watts)
        {
            return Err(format!(
                "power envelope must satisfy 0 <= off < idle <= nominal <= peak, got {}/{}/{}/{}",
                self.off_watts, self.idle_watts, self.nominal_watts, self.peak_watts
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_specs_validate() {
        NodeSpec::typical_xeon().validate().unwrap();
        NodeSpec::typical_knl().validate().unwrap();
    }

    #[test]
    fn ladder_is_ascending_and_bounded() {
        let cpu = CpuSpec::typical_xeon();
        let ladder = cpu.frequency_ladder();
        assert_eq!(ladder.len(), 16);
        assert!((ladder[0] - cpu.min_freq_ghz).abs() < 1e-12);
        assert!((ladder[15] - cpu.max_freq_ghz).abs() < 1e-12);
        for w in ladder.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn quantize_snaps_to_nearest() {
        let cpu = CpuSpec {
            cores: 4,
            min_freq_ghz: 1.0,
            base_freq_ghz: 1.5,
            max_freq_ghz: 2.0,
            freq_steps: 3, // 1.0, 1.5, 2.0
        };
        assert_eq!(cpu.quantize_frequency(1.6), 1.5);
        assert_eq!(cpu.quantize_frequency(1.9), 2.0);
        assert_eq!(cpu.quantize_frequency(0.2), 1.0);
        assert_eq!(cpu.quantize_frequency(9.0), 2.0);
    }

    #[test]
    fn invalid_envelope_rejected() {
        let mut spec = NodeSpec::typical_xeon();
        spec.idle_watts = 500.0;
        assert!(spec.validate().is_err());
        let mut spec2 = NodeSpec::typical_xeon();
        spec2.off_watts = 100.0;
        assert!(spec2.validate().is_err());
    }

    #[test]
    fn invalid_cpu_rejected() {
        let mut cpu = CpuSpec::typical_xeon();
        cpu.base_freq_ghz = 0.5; // below min
        assert!(cpu.validate().is_err());
        cpu = CpuSpec::typical_xeon();
        cpu.cores = 0;
        assert!(cpu.validate().is_err());
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(17);
        assert_eq!(id.to_string(), "n17");
        assert_eq!(id.index(), 17);
    }
}
