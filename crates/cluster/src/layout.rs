//! Facility layout: PDUs, chillers, and maintenance windows.
//!
//! Models CEA's "layout logic" from Table I: the scheduler must be able to
//! tell which PDUs and chillers a node or rack depends on, and avoid
//! scheduling jobs onto equipment that will undergo maintenance. The layout
//! is a two-level dependency map — cabinets draw power from PDUs and
//! cooling from chillers — plus a calendar of maintenance windows.

use crate::node::NodeId;
use crate::system::System;
use epa_simcore::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a power distribution unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PduId(pub u32);

/// Identifier of a chiller (cooling loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ChillerId(pub u32);

/// The piece of facility equipment a maintenance window affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Equipment {
    /// A power distribution unit.
    Pdu(PduId),
    /// A chiller / cooling loop.
    Chiller(ChillerId),
}

/// A scheduled maintenance window on one piece of equipment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// Affected equipment.
    pub equipment: Equipment,
    /// Window start.
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

impl MaintenanceWindow {
    /// True when `t` falls inside the window.
    #[must_use]
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// True when the window overlaps `[from, to)`.
    #[must_use]
    pub fn overlaps(&self, from: SimTime, to: SimTime) -> bool {
        self.start < to && from < self.end
    }
}

/// Facility dependency map: cabinet → PDU and cabinet → chiller, plus the
/// maintenance calendar.
#[derive(Debug, Clone, Default)]
pub struct FacilityLayout {
    cabinet_pdu: BTreeMap<u32, PduId>,
    cabinet_chiller: BTreeMap<u32, ChillerId>,
    windows: Vec<MaintenanceWindow>,
    nodes_per_cabinet: u32,
}

impl FacilityLayout {
    /// Builds a layout where `cabinets_per_pdu` consecutive cabinets share
    /// a PDU and `cabinets_per_chiller` share a chiller.
    #[must_use]
    pub fn regular(system: &System, cabinets_per_pdu: u32, cabinets_per_chiller: u32) -> Self {
        let cabinets = system.spec().cabinets;
        let cpp = cabinets_per_pdu.max(1);
        let cpc = cabinets_per_chiller.max(1);
        let mut cabinet_pdu = BTreeMap::new();
        let mut cabinet_chiller = BTreeMap::new();
        for c in 0..cabinets {
            cabinet_pdu.insert(c, PduId(c / cpp));
            cabinet_chiller.insert(c, ChillerId(c / cpc));
        }
        FacilityLayout {
            cabinet_pdu,
            cabinet_chiller,
            windows: Vec::new(),
            nodes_per_cabinet: system.spec().nodes_per_cabinet,
        }
    }

    /// The PDU a node depends on.
    #[must_use]
    pub fn pdu_of(&self, node: NodeId) -> Option<PduId> {
        self.cabinet_pdu
            .get(&(node.0 / self.nodes_per_cabinet.max(1)))
            .copied()
    }

    /// The chiller a node depends on.
    #[must_use]
    pub fn chiller_of(&self, node: NodeId) -> Option<ChillerId> {
        self.cabinet_chiller
            .get(&(node.0 / self.nodes_per_cabinet.max(1)))
            .copied()
    }

    /// Registers a maintenance window.
    pub fn add_maintenance(&mut self, window: MaintenanceWindow) {
        self.windows.push(window);
    }

    /// All registered windows.
    #[must_use]
    pub fn windows(&self) -> &[MaintenanceWindow] {
        &self.windows
    }

    /// True when the node's PDU or chiller has maintenance overlapping
    /// `[from, to)` — the CEA layout-logic check: "can I safely run a job
    /// on this node for this long?"
    #[must_use]
    pub fn node_affected_during(&self, node: NodeId, from: SimTime, to: SimTime) -> bool {
        let pdu = self.pdu_of(node);
        let chiller = self.chiller_of(node);
        self.windows.iter().any(|w| {
            w.overlaps(from, to)
                && match w.equipment {
                    Equipment::Pdu(p) => Some(p) == pdu,
                    Equipment::Chiller(c) => Some(c) == chiller,
                }
        })
    }

    /// All nodes of `system` affected by maintenance during `[from, to)`.
    #[must_use]
    pub fn affected_nodes(&self, system: &System, from: SimTime, to: SimTime) -> Vec<NodeId> {
        system
            .nodes()
            .filter(|&n| self.node_affected_during(n, from, to))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use crate::system::SystemSpec;
    use crate::topology::Topology;

    fn system() -> System {
        SystemSpec {
            name: "layout-test".into(),
            cabinets: 8,
            nodes_per_cabinet: 4,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 4 },
            peak_tflops: 1.0,
        }
        .build()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn regular_layout_mapping() {
        let sys = system();
        let layout = FacilityLayout::regular(&sys, 2, 4);
        // Cabinets 0,1 → PDU 0; 2,3 → PDU 1; chillers: 0..4 → chiller 0.
        assert_eq!(layout.pdu_of(NodeId(0)), Some(PduId(0)));
        assert_eq!(layout.pdu_of(NodeId(7)), Some(PduId(0))); // cabinet 1
        assert_eq!(layout.pdu_of(NodeId(8)), Some(PduId(1))); // cabinet 2
        assert_eq!(layout.chiller_of(NodeId(15)), Some(ChillerId(0))); // cabinet 3
        assert_eq!(layout.chiller_of(NodeId(16)), Some(ChillerId(1))); // cabinet 4
    }

    #[test]
    fn maintenance_affects_dependent_nodes_only() {
        let sys = system();
        let mut layout = FacilityLayout::regular(&sys, 2, 4);
        layout.add_maintenance(MaintenanceWindow {
            equipment: Equipment::Pdu(PduId(0)),
            start: t(100.0),
            end: t(200.0),
        });
        // Node 0 depends on PDU 0: affected if interval overlaps.
        assert!(layout.node_affected_during(NodeId(0), t(150.0), t(160.0)));
        assert!(layout.node_affected_during(NodeId(0), t(50.0), t(101.0)));
        assert!(!layout.node_affected_during(NodeId(0), t(200.0), t(300.0)));
        // Node 8 depends on PDU 1: never affected.
        assert!(!layout.node_affected_during(NodeId(8), t(150.0), t(160.0)));
    }

    #[test]
    fn chiller_maintenance_covers_whole_loop() {
        let sys = system();
        let mut layout = FacilityLayout::regular(&sys, 2, 4);
        layout.add_maintenance(MaintenanceWindow {
            equipment: Equipment::Chiller(ChillerId(0)),
            start: t(0.0),
            end: t(10.0),
        });
        let affected = layout.affected_nodes(&sys, t(0.0), t(5.0));
        // Chiller 0 cools cabinets 0..4 = nodes 0..16.
        assert_eq!(affected, (0..16).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn window_overlap_semantics() {
        let w = MaintenanceWindow {
            equipment: Equipment::Pdu(PduId(0)),
            start: t(10.0),
            end: t(20.0),
        };
        assert!(w.contains(t(10.0)));
        assert!(!w.contains(t(20.0)));
        assert!(w.overlaps(t(0.0), t(11.0)));
        assert!(!w.overlaps(t(20.0), t(30.0)));
        assert!(!w.overlaps(t(0.0), t(10.0))); // half-open
    }
}
