//! System specification: the Q2(c) description of a machine.

use crate::node::{NodeId, NodeSpec};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Static description of one HPC system, mirroring survey question Q2(c):
/// cabinets, nodes, cores, peak performance, node architecture,
/// interconnect, and power envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// System name (e.g. "Shaheen II", "SuperMUC").
    pub name: String,
    /// Number of cabinets/racks.
    pub cabinets: u32,
    /// Nodes per cabinet.
    pub nodes_per_cabinet: u32,
    /// Per-node hardware description.
    pub node: NodeSpec,
    /// Interconnect topology.
    pub topology: Topology,
    /// Peak performance in teraflops (descriptive; used for reports only).
    pub peak_tflops: f64,
}

impl SystemSpec {
    /// Total node count.
    #[must_use]
    pub fn total_nodes(&self) -> u32 {
        self.cabinets * self.nodes_per_cabinet
    }

    /// Total core count.
    #[must_use]
    pub fn total_cores(&self) -> u64 {
        u64::from(self.total_nodes()) * u64::from(self.node.cpu.cores)
    }

    /// System-wide idle power draw in watts (all nodes on, idle).
    #[must_use]
    pub fn idle_watts(&self) -> f64 {
        f64::from(self.total_nodes()) * self.node.idle_watts
    }

    /// System-wide peak power draw in watts.
    #[must_use]
    pub fn peak_watts(&self) -> f64 {
        f64::from(self.total_nodes()) * self.node.peak_watts
    }

    /// System-wide nominal power draw in watts.
    #[must_use]
    pub fn nominal_watts(&self) -> f64 {
        f64::from(self.total_nodes()) * self.node.nominal_watts
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.cabinets == 0 || self.nodes_per_cabinet == 0 {
            return Err("system must have at least one cabinet and node".into());
        }
        self.node.validate()
    }

    /// Builds the runtime [`System`].
    #[must_use]
    pub fn build(self) -> System {
        System::new(self)
    }
}

/// A built system: the spec plus derived node bookkeeping.
#[derive(Debug, Clone)]
pub struct System {
    spec: SystemSpec,
}

impl System {
    /// Creates a system from a validated spec.
    ///
    /// # Panics
    /// Panics if the spec fails validation.
    #[must_use]
    pub fn new(spec: SystemSpec) -> Self {
        spec.validate().expect("invalid system spec");
        System { spec }
    }

    /// The static specification.
    #[must_use]
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Total node count.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.spec.total_nodes() as usize
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.spec.total_nodes()).map(NodeId)
    }

    /// The cabinet index a node sits in.
    #[must_use]
    pub fn cabinet_of(&self, node: NodeId) -> u32 {
        node.0 / self.spec.nodes_per_cabinet
    }

    /// All nodes in one cabinet.
    #[must_use]
    pub fn cabinet_nodes(&self, cabinet: u32) -> Vec<NodeId> {
        let lo = cabinet * self.spec.nodes_per_cabinet;
        let hi = (lo + self.spec.nodes_per_cabinet).min(self.spec.total_nodes());
        (lo..hi).map(NodeId).collect()
    }

    /// The interconnect topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.spec.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    fn small_spec() -> SystemSpec {
        SystemSpec {
            name: "test".into(),
            cabinets: 4,
            nodes_per_cabinet: 16,
            node: NodeSpec::typical_xeon(),
            topology: Topology::FatTree { arity: 16 },
            peak_tflops: 100.0,
        }
    }

    #[test]
    fn derived_totals() {
        let spec = small_spec();
        assert_eq!(spec.total_nodes(), 64);
        assert_eq!(spec.total_cores(), 64 * 32);
        assert!((spec.idle_watts() - 64.0 * 90.0).abs() < 1e-9);
        assert!((spec.peak_watts() - 64.0 * 400.0).abs() < 1e-9);
    }

    #[test]
    fn cabinet_mapping() {
        let sys = small_spec().build();
        assert_eq!(sys.num_nodes(), 64);
        assert_eq!(sys.cabinet_of(NodeId(0)), 0);
        assert_eq!(sys.cabinet_of(NodeId(15)), 0);
        assert_eq!(sys.cabinet_of(NodeId(16)), 1);
        assert_eq!(
            sys.cabinet_nodes(3),
            (48..64).map(NodeId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nodes_iterator_is_dense() {
        let sys = small_spec().build();
        let ids: Vec<_> = sys.nodes().collect();
        assert_eq!(ids.len(), 64);
        assert_eq!(ids[0], NodeId(0));
        assert_eq!(ids[63], NodeId(63));
    }

    #[test]
    #[should_panic(expected = "invalid system spec")]
    fn zero_cabinet_rejected() {
        let mut spec = small_spec();
        spec.cabinets = 0;
        let _ = spec.build();
    }
}
