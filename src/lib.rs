//! # epa-jsrm — Energy and Power Aware Job Scheduling and Resource Management
//!
//! A full-system reproduction of *"Energy and Power Aware Job Scheduling
//! and Resource Management: Global Survey — Initial Analysis"* (Maiterth
//! et al., IPDPSW 2018): a discrete-event HPC cluster simulation framework
//! in which every EPA JSRM technique the survey catalogues is a working
//! implementation, the nine surveyed centers are runnable site models, and
//! the paper's tables and figures are regenerated from simulation.
//!
//! This crate is the facade: it re-exports the workspace's layers under
//! one namespace and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ```
//! use epa_jsrm::prelude::*;
//!
//! // Simulate one of the surveyed centers for a day.
//! let mut site = epa_jsrm::sites::centers::stfc::config(42);
//! site.horizon = SimTime::from_hours(24.0);
//! let report = run_site(&site);
//! assert!(report.outcome.completed > 0);
//! ```

/// Simulation kernel: events, time, RNG, statistics.
pub use epa_simcore as simcore;

/// Machine model: nodes, topologies, allocators, facility layout.
pub use epa_cluster as cluster;

/// Power substrate: DVFS, RAPL, CAPMC, facility, meters, budgets.
pub use epa_power as power;

/// Jobs and workload generation, SWF traces.
pub use epa_workload as workload;

/// Job power/energy/runtime prediction.
pub use epa_predict as predict;

/// Scheduling engine and every EPA policy.
pub use epa_sched as sched;

/// Facility digital twin: price/carbon traces, demand response, cooling
/// loop, follow-the-renewables federation.
pub use epa_grid as grid;

/// Resource management: state machines, actuators, monitoring, reports.
pub use epa_rm as rm;

/// Deterministic fault model: correlated failure domains, sensor and
/// actuator faults, retry/backoff policies.
pub use epa_faults as faults;

/// Observability: decision tracing, metrics registry, replay verifier
/// ([`epa_obs`]).
pub use epa_obs as obs;

/// The nine surveyed site models.
pub use epa_sites as sites;

/// The survey engine: questionnaire, capability matrix, tables, figures.
pub use epa_core as survey;

/// The most commonly used items, for `use epa_jsrm::prelude::*`.
pub mod prelude {
    pub use epa_cluster::alloc::AllocStrategy;
    pub use epa_cluster::system::{System, SystemSpec};
    pub use epa_core::report::SurveyReport;
    pub use epa_sched::control::{ControlAction, ControlMode, Observation};
    pub use epa_sched::engine::{ClusterSim, EngineConfig, SimOutcome};
    pub use epa_sched::policies::registry::{make_policy, POLICY_NAMES};
    pub use epa_sched::policies::{
        ConservativeBackfill, EasyBackfill, EnergyAwareScheduler, Fcfs, OverprovisionScheduler,
        PowerAwareBackfill,
    };
    pub use epa_sched::view::{Decision, Policy, SchedView};
    pub use epa_simcore::time::{SimDuration, SimTime};
    pub use epa_sites::runner::{run_site, SiteReport};
    pub use epa_workload::generator::{WorkloadGenerator, WorkloadParams};
    pub use epa_workload::job::{Job, JobBuilder, JobId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let _ = SimTime::from_hours(1.0);
        let _ = JobBuilder::new(1).build();
        let _ = EasyBackfill;
    }
}
