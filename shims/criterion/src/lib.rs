//! Offline stand-in for `criterion`.
//!
//! Keeps criterion's authoring surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) but replaces the statistical
//! machinery with a simple calibrated timer: each benchmark is warmed up,
//! the iteration count is scaled to a ~100 ms measurement window, and the
//! median of `sample_size` samples is printed as ns/iter.
//!
//! Set `CRITERION_FAST=1` to cut warm-up and samples for smoke runs.

use std::time::{Duration, Instant};

/// Benchmark identifier; renders as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying only a parameter (grouped benches).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Measures one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Median ns/iter, filled in by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter across samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills
        // roughly the measurement window.
        let calib_start = Instant::now();
        std::hint::black_box(routine());
        let first = calib_start.elapsed();
        let window = if fast_mode() {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(100)
        };
        let iters = if first.is_zero() {
            1024
        } else {
            (window.as_nanos() / first.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.result_ns = samples_ns[samples_ns.len() / 2];
    }
}

fn fast_mode() -> bool {
    std::env::var("CRITERION_FAST").is_ok_and(|v| v != "0")
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: default_samples(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into().id, default_samples(), f);
        self
    }
}

fn default_samples() -> usize {
    if fast_mode() {
        3
    } else {
        10
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (printing is already done per-bench).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(full_id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        result_ns: 0.0,
    };
    f(&mut bencher);
    let ns = bencher.result_ns;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("bench: {full_id:<50} {human}/iter");
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("CRITERION_FAST", "1");
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| std::hint::black_box(2u64 + 2)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| std::hint::black_box(1u64)));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        g.finish();
    }
}
