//! Offline stand-in for `thiserror`'s derive macro.
//!
//! Parses the enum with a hand-rolled `proc_macro` token walker (no
//! `syn`/`quote` available offline) and generates `Display` from each
//! variant's `#[error("...")]` attribute plus an empty
//! `std::error::Error` impl. Supports unit, tuple, and struct variants
//! with positional (`{0}`) and named (`{field:.1}`, `{field:?}`)
//! interpolation — the full surface this workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    /// Format literal including its surrounding quotes.
    format: String,
    fields: Fields,
}

enum Fields {
    Unit,
    /// Tuple arity.
    Tuple(usize),
    /// Named field identifiers, in declaration order.
    Named(Vec<String>),
}

/// Derives `Display` + `Error` from `#[error("...")]` attributes, on the
/// variants of an enum or on a struct itself.
#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let top_format = capture_error_attr(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(kw) => kw.to_string(),
        other => panic!("thiserror shim: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("thiserror shim: expected type name, found {other}"),
    };
    i += 1;
    skip_generics(&tokens, &mut i);

    if kind == "struct" {
        let format =
            top_format.expect("thiserror shim: struct needs a top-level #[error(..)] attribute");
        return derive_struct_error(&name, &tokens, i, &format);
    }
    if kind != "enum" {
        panic!("thiserror shim: cannot derive Error for a {kind}");
    }

    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            _ => i += 1,
        }
    };
    let variants = parse_variants(body);

    let mut arms = String::new();
    for v in &variants {
        let fmt = &v.format;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!("{name}::{} => ::std::write!(f, {fmt}),\n", v.name));
            }
            Fields::Tuple(arity) => {
                // Rewrite positional refs {N...} to named bindings {fN...}
                // so unused fields can be bound as `_` without tripping
                // "argument never used" errors.
                let rewritten = rewrite_positional(fmt);
                let binders: Vec<String> = (0..*arity)
                    .map(|k| {
                        if rewritten.contains(&format!("{{f{k}")) {
                            format!("f{k}")
                        } else {
                            "_".to_owned()
                        }
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{}({}) => ::std::write!(f, {rewritten}),\n",
                    v.name,
                    binders.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let binders: Vec<String> = fields
                    .iter()
                    .map(|fname| {
                        if fmt.contains(&format!("{{{fname}")) {
                            fname.clone()
                        } else {
                            format!("{fname}: _")
                        }
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{} {{ {} }} => ::std::write!(f, {fmt}),\n",
                    v.name,
                    binders.join(", ")
                ));
            }
        }
    }

    let out = format!(
        "impl ::std::fmt::Display for {name} {{\n\
             fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}\n\
         impl ::std::error::Error for {name} {{}}\n"
    );
    out.parse().expect("thiserror shim: generated impl parses")
}

/// Generates `Display` + `Error` for a struct with a top-level
/// `#[error("...")]` attribute.
fn derive_struct_error(name: &str, tokens: &[TokenTree], i: usize, format: &str) -> TokenStream {
    let display_body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_field_idents(g.stream());
            let binders: Vec<String> = fields
                .iter()
                .map(|fname| {
                    if format.contains(&format!("{{{fname}")) {
                        fname.clone()
                    } else {
                        format!("{fname}: _")
                    }
                })
                .collect();
            format!(
                "let {name} {{ {} }} = self;\n::std::write!(f, {format})",
                binders.join(", ")
            )
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_top_level(g.stream());
            let rewritten = rewrite_positional(format);
            let binders: Vec<String> = (0..arity)
                .map(|k| {
                    if rewritten.contains(&format!("{{f{k}")) {
                        format!("f{k}")
                    } else {
                        "_".to_owned()
                    }
                })
                .collect();
            format!(
                "let {name}({}) = self;\n::std::write!(f, {rewritten})",
                binders.join(", ")
            )
        }
        // Unit struct.
        _ => format!("::std::write!(f, {format})"),
    };
    let out = format!(
        "impl ::std::fmt::Display for {name} {{\n\
             fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 {display_body}\n\
             }}\n\
         }}\n\
         impl ::std::error::Error for {name} {{}}\n"
    );
    out.parse().expect("thiserror shim: generated impl parses")
}

/// Skips leading attributes, returning the literal from the last
/// `#[error("...")]` seen (quotes included).
fn capture_error_attr(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut format = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "error" {
                    if let Some(lit) = args.stream().into_iter().next() {
                        format = Some(lit.to_string());
                    }
                }
            }
            *i += 1;
        }
    }
    format
}

/// `{0}` → `{f0}`, `{1:.1}` → `{f1:.1}`; leaves `{{`, `}}`, and named
/// interpolations untouched.
fn rewrite_positional(lit: &str) -> String {
    let chars: Vec<char> = lit.chars().collect();
    let mut out = String::with_capacity(lit.len() + 8);
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if i + 1 < chars.len() && chars[i + 1] == '{' {
                out.push_str("{{");
                i += 2;
                continue;
            }
            if i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
                out.push('{');
                out.push('f');
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    out.push(chars[i]);
                    i += 1;
                }
                continue;
            }
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut format = None;
        // Attributes: capture #[error("...")], skip the rest (docs etc).
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "error" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    let lit = args
                                        .stream()
                                        .into_iter()
                                        .next()
                                        .expect("error attribute has a format literal");
                                    format = Some(lit.to_string());
                                }
                            }
                        }
                        i += 2;
                        continue;
                    }
                    i += 1;
                }
                _ => break,
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("thiserror shim: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(named_field_idents(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant {
            name,
            format: format.expect("thiserror shim: every variant needs #[error(..)]"),
            fields,
        });
    }
    variants
}

/// Counts comma-separated items at the top level of a token stream,
/// treating `<...>` generic argument lists as nested.
fn count_top_level(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing = true; // becomes false once an item has tokens
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing = true;
            }
            _ => trailing = false,
        }
    }
    if trailing {
        count -= 1; // trailing comma does not open a new item
    }
    count
}

/// Extracts field identifiers (the ident before each top-level `:`) from
/// a named-field token stream.
fn named_field_idents(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("thiserror shim: expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` until a top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if let Some(TokenTree::Group(_)) = tokens.get(*i) {
            *i += 1; // [...]
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) etc.
                }
            }
        }
    }
}

fn skip_generics(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while *i < tokens.len() {
                if let TokenTree::Punct(p) = &tokens[*i] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                *i += 1;
                                return;
                            }
                        }
                        _ => {}
                    }
                }
                *i += 1;
            }
        }
    }
}
