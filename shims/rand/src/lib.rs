//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand` 0.9: the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits and the uniform sampling
//! used by `epa-simcore`'s [`SimRng`]. Only what the workspace calls is
//! implemented; the trait shapes match `rand` so swapping the real crate
//! back in is a one-line Cargo change.

use std::ops::Range;

/// Core random-number generation: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (the same
    /// construction `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The standard uniform distribution over a type's natural range
/// (`[0, 1)` for floats).
pub struct StandardUniform;

/// A distribution that can sample values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// A range that uniform values can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling over the top 64-bit range keeps the
                // draw exactly uniform.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard uniform distribution.
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Draws a value uniformly from a range.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
