//! Offline stand-in for `thiserror`: re-exports the [`Error`] derive.
//!
//! The derive generates `std::fmt::Display` from `#[error("...")]`
//! attributes and an empty `std::error::Error` impl — the subset this
//! workspace uses (no `#[from]`/`#[source]` chaining).

pub use thiserror_impl::Error;
