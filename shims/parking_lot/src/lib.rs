//! Offline stand-in for `parking_lot`: a [`Mutex`] whose `lock()` does not
//! return a poison `Result`, backed by `std::sync::Mutex`.

use std::sync::MutexGuard;

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (matching `parking_lot`,
    /// which has no lock poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
