//! Offline stand-in for `serde_json`: JSON emission over the shim
//! [`serde::Value`] data model, plus the [`json!`] macro.
//!
//! Output formatting is deterministic: object keys keep declaration /
//! insertion order, floats print via Rust's shortest round-trip `Display`,
//! and non-finite floats serialize as `null` (as `serde_json::Value`
//! does). The golden-snapshot determinism tests build on this.

pub use serde::Value;

/// Serialization error (the shim never fails; the type exists for API
/// compatibility with `serde_json::to_string*`'s `Result`).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors `serde_json`'s API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (2-space indent).
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors `serde_json`'s API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Never fails in this shim; the `Result` mirrors `serde_json`'s API.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; integral floats keep
                // a ".0" so the value reads back as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-literal syntax; values are arbitrary
/// `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_owned(), $crate::to_value(&$val).expect("serializable"))),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $($crate::to_value(&$val).expect("serializable")),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = json!({ "a": 1u32, "b": [true, false], "c": 1.5f64 });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,false],"c":1.5}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_keep_roundtrip_form() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }
}
