//! Offline stand-in for `proptest`.
//!
//! Same test-authoring surface (`proptest!`, `prop_assert*`,
//! `prop_oneof!`, `Strategy`, `collection::vec`, `any`, `Just`,
//! `ProptestConfig`) backed by a deterministic splitmix64 generator.
//! Each test's case sequence is seeded from its module path and name, so
//! runs are reproducible without a persistence file. No shrinking: a
//! failing case panics with its case index and seed instead of a
//! minimized input.

use std::ops::Range;

/// Deterministic per-test random source (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Run-time configuration; only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig;
    use super::TestRng;

    /// A failed (or rejected) property case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (e.g. by `prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property test: `cases` deterministic inputs, panicking
    /// on the first failure with enough context to re-run it.
    pub fn run<F>(config: &ProptestConfig, module: &str, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(module.as_bytes()) ^ fnv1a(name.as_bytes()).rotate_left(17);
        for case in 0..config.cases {
            let seed = base ^ u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d);
            let mut rng = TestRng::new(seed);
            match f(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name} failed at case {case} (seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// Generates values of `Self::Value`. Unlike upstream proptest there
    /// is no value tree: generation is direct and unshrinkable.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, the unit `prop_oneof!` composes over.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty integer range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty integer range strategy");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty integer range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// `&str` strategies: a small regex subset — concatenations of literal
/// characters and `[a-z0-9]`-style classes, each optionally repeated with
/// `{n}` or `{m,n}`. Covers the patterns used in this workspace.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a char class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed char class in pattern {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid char range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {n} or {m,n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {self:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition lower bound"),
                        n.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[pick]);
            }
        }
        out
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive.
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty => $gen:expr),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(
    u64 => |rng| rng.next_u64(),
    u32 => |rng| rng.next_u64() as u32,
    u16 => |rng| rng.next_u64() as u16,
    u8 => |rng| rng.next_u64() as u8,
    i64 => |rng| rng.next_u64() as i64,
    i32 => |rng| rng.next_u64() as i32,
    bool => |rng| rng.next_u64() & 1 == 1,
    f64 => |rng| rng.next_f64() * 2e9 - 1e9
);

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// The `proptest::bool::ANY` strategy.
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Constant-value strategy.
    #[allow(non_snake_case)]
    #[must_use]
    pub fn Just<T: Clone>(value: T) -> crate::strategy::Just<T> {
        crate::strategy::Just(value)
    }
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal `#[test]` that runs `ProptestConfig::cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::test_runner::run(
                    &config,
                    ::std::module_path!(),
                    ::std::stringify!($name),
                    |rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        let check = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                        check()
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case (counted as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.5).generate(&mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let mut rng = crate::TestRng::new(13);
        for _ in 0..200 {
            let v = crate::collection::vec(0.0f64..1.0, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::TestRng::new(17);
        let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..20];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10..=19 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, ys in crate::collection::vec(0.0f64..1.0, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert!(!ys.is_empty());
        }
    }
}
