//! Offline stand-in for `rayon`.
//!
//! `par_iter()` here returns a plain sequential iterator: every adapter
//! and reduction used by the workspace (`map`, `sum`) then comes from
//! `std::iter::Iterator`. Replication runs serially — correctness and
//! determinism are identical, only wall-clock parallel speedup is lost,
//! which this offline environment accepts.

/// The rayon prelude: `par_iter()` entry points.
pub mod prelude {
    /// Types with a by-reference "parallel" iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type.
        type Iter: Iterator;

        /// Iterates the collection (sequentially in this stand-in).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1u64, 2, 3, 4];
        let total: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(total, 20);
    }
}
