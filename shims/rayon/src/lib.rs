//! Offline stand-in for `rayon`, backed by a real thread pool.
//!
//! Unlike the earlier sequential shim, `par_iter()` now fans work across
//! OS threads: workers claim contiguous index chunks from a shared atomic
//! cursor (`std::thread::scope`, no work-stealing deques needed for the
//! coarse-grained cells this workspace runs). Every adapter merges results
//! **in index order**, and `sum()` reduces the merged vector sequentially,
//! so floating-point aggregates are byte-identical to a serial run no
//! matter the thread count.
//!
//! Thread count resolution (first match wins):
//! 1. an active [`with_num_threads`] override on the calling thread,
//! 2. the `EPA_JSRM_THREADS` environment variable (read once per process),
//! 3. `std::thread::available_parallelism()`.
//!
//! Supported API subset: `par_iter()` with `map`/`sum`/`collect`/`for_each`,
//! and top-level [`join`] / [`current_num_threads`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Parses an `EPA_JSRM_THREADS` value: a positive integer, or an error
/// describing why it was rejected.
fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        Ok(n) => Err(format!("{n} is not a positive thread count")),
        Err(_) => Err(format!("{raw:?} is not an integer")),
    }
}

/// Process-wide default thread count: `EPA_JSRM_THREADS` if set and valid,
/// else the number of available cores (1 if that cannot be determined).
/// An invalid value is not silently dropped: a one-time stderr warning
/// names the variable and the value, so a typo'd `EPA_JSRM_THREADS=abc`
/// cannot masquerade as "unset".
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(raw) = std::env::var("EPA_JSRM_THREADS") {
            match parse_threads(&raw) {
                Ok(n) => return n,
                Err(why) => eprintln!(
                    "warning: ignoring invalid EPA_JSRM_THREADS={raw:?}: {why} \
                     (falling back to available parallelism)"
                ),
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Per-thread override installed by `with_num_threads` (0 = none).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations started from this thread will use.
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.with(|c| c.get());
    if over >= 1 {
        over
    } else {
        default_threads()
    }
}

/// Runs `f` with parallel operations on this thread pinned to `n` threads
/// (`n = 1` forces serial execution). Restores the previous setting on exit,
/// including on panic. Used by tests to compare serial vs parallel runs
/// inside one process regardless of `EPA_JSRM_THREADS`.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Maps `f` over `items` on the pool, returning results in index order.
///
/// Workers claim chunks of indices from an atomic cursor and stash
/// `(index, result)` pairs; the pairs are merged and sorted by index before
/// returning, so the output order (and any subsequent in-order reduction)
/// is independent of scheduling. Worker panics propagate to the caller.
pub(crate) fn par_map_indexed<'data, T, R, F>(items: &'data [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return items.iter().map(f).collect();
    }

    // Chunks small enough to balance load, large enough to amortise the
    // cursor fetch; cells in this workspace are coarse (whole sim runs).
    let chunk = len.div_ceil(threads * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(item)));
                    }
                }
                if !local.is_empty() {
                    collected
                        .lock()
                        .expect("rayon shim: result mutex poisoned")
                        .append(&mut local);
                }
            });
        }
    });

    let mut pairs = collected
        .into_inner()
        .expect("rayon shim: result mutex poisoned");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), len);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        (ra, rb)
    } else {
        std::thread::scope(|scope| {
            let handle_b = scope.spawn(oper_b);
            let ra = oper_a();
            let rb = handle_b
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            (ra, rb)
        })
    }
}

/// The rayon prelude: `par_iter()` entry points and iterator adapters.
pub mod prelude {
    use super::par_map_indexed;

    /// A borrowed parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    /// A mapped parallel iterator: executes on a terminal call.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Lazily maps each item; execution happens at the terminal call.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every item across the pool (no result).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data T) + Sync,
        {
            par_map_indexed(self.items, f);
        }
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        /// Executes the map and sums results **in index order**, making the
        /// reduction bit-identical to a serial run.
        pub fn sum<S>(self) -> S
        where
            S: std::iter::Sum<R>,
        {
            self.run().into_iter().sum()
        }

        /// Executes the map and collects results in index order.
        pub fn collect<C>(self) -> C
        where
            C: FromIterator<R>,
        {
            self.run().into_iter().collect()
        }

        /// Executes the map and feeds each result (in index order) to `f`.
        pub fn for_each<G>(self, g: G)
        where
            G: Fn(R) + Sync,
        {
            for r in self.run() {
                g(r);
            }
        }

        fn run(self) -> Vec<R> {
            par_map_indexed(self.items, self.f)
        }
    }

    /// Types with a by-reference parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type.
        type Item: 'data;

        /// Creates a parallel iterator over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, join, with_num_threads};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_iter_matches_iter() {
        let v = [1u64, 2, 3, 4];
        let total: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn collect_preserves_index_order_at_any_thread_count() {
        let v: Vec<u32> = (0..1000).collect();
        for threads in [1usize, 2, 3, 4, 7, 8] {
            let doubled: Vec<u32> =
                with_num_threads(threads, || v.par_iter().map(|&x| x * 2).collect());
            let expected: Vec<u32> = v.iter().map(|&x| x * 2).collect();
            assert_eq!(doubled, expected, "threads={threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // Values chosen so reassociation would change the result.
        let v: Vec<f64> = (0..500)
            .map(|i| 1.0 / (i as f64 + 1.0) * if i % 2 == 0 { 1e10 } else { 1e-10 })
            .collect();
        let serial: f64 = with_num_threads(1, || v.par_iter().map(|&x| x).sum());
        for threads in [2usize, 3, 4, 8] {
            let par: f64 = with_num_threads(threads, || v.par_iter().map(|&x| x).sum());
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn for_each_visits_every_item() {
        let v: Vec<u64> = (1..=100).collect();
        let acc = AtomicU64::new(0);
        with_num_threads(4, || {
            v.par_iter().for_each(|&x| {
                acc.fetch_add(x, Ordering::Relaxed);
            })
        });
        assert_eq!(acc.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let (a, b) = with_num_threads(1, || join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn with_num_threads_overrides_and_restores() {
        let base = current_num_threads();
        let inside = with_num_threads(3, current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), base);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(super::parse_threads("1"), Ok(1));
        assert_eq!(super::parse_threads("4"), Ok(4));
        assert_eq!(super::parse_threads(" 8 "), Ok(8));
    }

    #[test]
    fn parse_threads_rejects_garbage_and_zero() {
        let err = super::parse_threads("abc").unwrap_err();
        assert!(err.contains("abc"), "error should name the value: {err}");
        let err = super::parse_threads("0").unwrap_err();
        assert!(err.contains('0'), "error should name the value: {err}");
        assert!(super::parse_threads("").is_err());
        assert!(super::parse_threads("-2").is_err());
        assert!(super::parse_threads("3.5").is_err());
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = vec![];
        let s: u64 = empty.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0);
        let one = [7u64];
        let c: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(c, vec![8]);
    }
}
