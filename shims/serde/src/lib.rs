//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors a minimal serialization framework with serde's surface:
//! `#[derive(Serialize, Deserialize)]` and the `serde_json` entry points
//! the code calls. Serialization is direct-to-[`Value`] (the JSON data
//! model) rather than serde's visitor architecture — equivalent output
//! for every type this workspace serializes, a fraction of the machinery.
//!
//! Nothing in the workspace deserializes at runtime, so the
//! `Deserialize` derive is accepted and expands to nothing.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A JSON value tree. Object keys keep insertion order, which for derived
/// structs is declaration order — making serialized output deterministic
/// (the golden-snapshot tests rely on this).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept apart so `u64::MAX` survives).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string to use when this value is an object key.
    #[must_use]
    pub fn as_key(&self) -> String {
        match self {
            Value::String(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Float(f) => format!("{f}"),
            other => panic!("unsupported JSON object key: {other:?}"),
        }
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value().as_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}

impl_serialize_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::Int(3));
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u32, 2.0f64)];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![Value::Array(vec![Value::Int(1), Value::Float(2.0)])])
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_owned(), 7u64);
        assert_eq!(
            m.to_value(),
            Value::Object(vec![("k".into(), Value::UInt(7))])
        );
    }
}
