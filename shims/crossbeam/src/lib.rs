//! Offline stand-in for `crossbeam`: bounded MPMC channels (hand-rolled
//! `Mutex` + `Condvar` queue, so both halves are `Sync` and cloneable like
//! crossbeam's) and scoped threads over `std::thread::scope`.

/// Multi-producer multi-consumer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signaled when the queue gains an item or all senders drop.
        not_empty: Condvar,
        /// Signaled when the queue loses an item or all receivers drop.
        not_full: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable for multiple producers.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable, and `Sync` so it can be shared by
    /// reference across scoped threads.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is accepted; errors when all receivers
        /// are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                st = self.0.not_full.wait(st).expect("channel lock");
            }
        }
    }

    /// The send-side error: the message that could not be delivered.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    /// All senders dropped and the buffer is empty.
    #[derive(Debug)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug)]
    pub enum TryRecvError {
        /// No message buffered right now.
        Empty,
        /// No message and no senders remain.
        Disconnected,
    }

    /// Creates a bounded channel with the given capacity.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.min(4096)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }
}

/// Scoped threads (subset of `crossbeam-utils`' `thread` module).
pub mod thread {
    /// Handle passed to the scope closure; spawns borrowing threads.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (to
        /// allow nested spawns), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)));
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// joins them all before returning. Panics in child threads propagate
    /// (so the `Ok` is unconditional, like crossbeam's happy path).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let total: u32 = thread::scope(|s| {
            for base in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..10 {
                        tx.send(base * 10 + i).expect("receiver alive");
                    }
                });
            }
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .expect("threads join");
        assert_eq!(total, (0..40).sum());
    }

    #[test]
    fn receiver_shared_by_reference() {
        let (tx, rx) = channel::bounded::<u64>(8);
        let sum: u64 = thread::scope(|s| {
            s.spawn(|_| {
                for i in 0..100u64 {
                    tx.send(i).expect("receiver alive");
                }
                drop(tx);
            });
            // Borrow rx from the scope closure, as epa-rm does.
            let mut acc = 0;
            while let Ok(v) = rx.recv() {
                acc += v;
            }
            acc
        })
        .expect("threads join");
        assert_eq!(sum, (0..100).sum());
    }

    #[test]
    fn try_recv_reports_disconnect() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert!(matches!(rx.try_recv(), Ok(9)));
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
    }
}
