//! Offline stand-in for `rand_chacha`: a ChaCha8 generator.
//!
//! The workspace needs a specified, version-stable PRNG for reproducible
//! simulation (see `epa-simcore::rng`). This is a faithful ChaCha
//! implementation (8 double-rounds, 64-byte blocks, 64-bit block counter)
//! seeded through [`rand::SeedableRng`]. Its stream is fixed by this
//! source file, which is exactly the stability property the simulator
//! relies on.

use rand::{RngCore, SeedableRng};

const WORDS: usize = 16;

/// A ChaCha generator with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state rows 1–2).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; WORDS],
    /// Next word to emit from `block`.
    index: usize,
}

impl ChaCha8Rng {
    /// The absolute stream position in 32-bit words: how many words have
    /// been emitted since seeding. Together with the seed this is the
    /// generator's entire observable state, which makes snapshot/restore
    /// a `(seed, word_pos)` pair.
    #[must_use]
    pub fn get_word_pos(&self) -> u64 {
        if self.counter == 0 {
            // Fresh state: nothing emitted, no block generated yet.
            0
        } else {
            (self.counter - 1) * WORDS as u64 + self.index as u64
        }
    }

    /// Fast-forwards (or rewinds) the generator to an absolute stream
    /// position in 32-bit words, as reported by [`Self::get_word_pos`].
    /// The next draw emits exactly the word a continuously-run generator
    /// would emit at that position.
    pub fn set_word_pos(&mut self, word_pos: u64) {
        self.counter = word_pos / WORDS as u64;
        self.refill(); // computes the block for `counter`, then bumps it
        self.index = (word_pos % WORDS as u64) as usize;
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [0u32; WORDS];
        x[..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;
        for _ in 0..4 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, i) in x.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.block = x;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; WORDS],
            index: WORDS, // force refill on first draw
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn output_is_balanced() {
        // Sanity: bits look uniform (mean of u32s near 2^31).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| f64::from(rng.next_u32())).sum::<f64>() / f64::from(n);
        let expected = f64::from(u32::MAX) / 2.0;
        assert!((mean - expected).abs() < expected * 0.02, "mean {mean}");
    }

    #[test]
    fn word_pos_roundtrip_at_every_offset() {
        // Restoring at any position — block-aligned or mid-block, zero or
        // deep — must continue the exact stream of an uninterrupted run.
        for skip in [0usize, 1, 13, 15, 16, 17, 31, 32, 100, 1000] {
            let mut a = ChaCha8Rng::seed_from_u64(11);
            for _ in 0..skip {
                a.next_u32();
            }
            let pos = a.get_word_pos();
            assert_eq!(pos, skip as u64);
            let mut b = ChaCha8Rng::seed_from_u64(11);
            b.set_word_pos(pos);
            assert_eq!(b.get_word_pos(), pos);
            for _ in 0..64 {
                assert_eq!(a.next_u32(), b.next_u32(), "diverged after skip {skip}");
            }
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..13 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
