//! Offline stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` with a hand-rolled `proc_macro`
//! token walker (no `syn`/`quote` offline). Supported shapes — the full
//! set this workspace uses:
//!
//! - named-field structs → JSON objects in declaration order
//! - newtype structs → transparent (serde's default; `#[serde(transparent)]`
//!   is accepted and redundant)
//! - tuple structs → JSON arrays
//! - enums → externally tagged (serde's default): unit variants as
//!   strings, data variants as single-key objects
//!
//! `#[derive(Deserialize)]` is accepted and expands to nothing: no code
//! in this workspace deserializes at runtime.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic types are not supported (derive on {name})");
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                struct_body(&name, named_field_idents(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                tuple_struct_body(count_top_level(g.stream()))
            }
            _ => "serde::Value::Null".to_owned(),
        },
        "enum" => {
            let group = loop {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g,
                    _ => i += 1,
                }
            };
            enum_body(&name, group.stream())
        }
        other => panic!("serde shim: cannot derive Serialize for {other}"),
    };

    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    );
    out.parse().expect("serde shim: generated impl parses")
}

/// Accepts `#[derive(Deserialize)]` without generating code (nothing in
/// the workspace deserializes at runtime).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn struct_body(_name: &str, fields: Vec<String>) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_owned(), serde::Serialize::to_value(&self.{f}))"))
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(", "))
}

fn tuple_struct_body(arity: usize) -> String {
    match arity {
        0 => "serde::Value::Array(vec![])".to_owned(),
        // Newtype structs are transparent, serde's default behavior.
        1 => "serde::Serialize::to_value(&self.0)".to_owned(),
        n => {
            let items: Vec<String> = (0..n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
    }
}

fn enum_body(name: &str, body: TokenStream) -> String {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut arms = String::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level(g.stream());
                i += 1;
                let binders: Vec<String> = (0..arity).map(|k| format!("f{k}")).collect();
                let payload = if arity == 1 {
                    "serde::Serialize::to_value(f0)".to_owned()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({}) => serde::Value::Object(vec![(\"{vname}\".to_owned(), {payload})]),\n",
                    binders.join(", ")
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_field_idents(g.stream());
                i += 1;
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_owned(), serde::Serialize::to_value({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => serde::Value::Object(vec![(\"{vname}\".to_owned(), serde::Value::Object(vec![{}]))]),\n",
                    fields.join(", "),
                    entries.join(", ")
                ));
            }
            _ => {
                arms.push_str(&format!(
                    "{name}::{vname} => serde::Value::String(\"{vname}\".to_owned()),\n"
                ));
            }
        }
        // Skip an explicit discriminant, then the trailing comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    format!("match self {{\n{arms}\n}}")
}

/// Counts comma-separated items at the top level of a token stream,
/// treating `<...>` generic argument lists as nested.
fn count_top_level(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing = true;
            }
            _ => trailing = false,
        }
    }
    if trailing {
        count -= 1;
    }
    count
}

/// Extracts field identifiers (the ident before each top-level `:`) from
/// a named-field token stream.
fn named_field_idents(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(*i) {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}
